"""Struct-of-arrays cohort core: heterogeneous plans, one runner.

The :class:`~repro.virt.migration.group.GroupCheckpointScheduler`
batches *identical* checkpoint plans into cohorts, each with its own
kernel process.  That is the right shape for SpotCheck's homogeneous
pools, but a realistic multi-tenant market shard mixes workload
classes: every distinct (interval, dirty, cap) plan costs one more
cohort process, and a plan divergence costs a cohort split plus a
rejoin — at the limit the scheduler degenerates back toward per-VM
wakeups.  Spot-on-style derivative clouds (long-running jobs with
application-specific checkpoint cadences) make heterogeneous plans the
common case, not the fallback.

:class:`SoaCheckpointScheduler` replaces one-process-per-cohort with
one vectorized runner per (pool, mechanism) datapath:

* **member state lives in parallel numpy arrays** — interval, dirty
  bytes per round, stream rate cap, and plan-group id, indexed by a
  free-listed member slot;
* **plan-groups live in parallel arrays too** — interval, dirty, cap,
  member count, and the group's *next due time* (``inf`` marks a dead
  group), alongside python-side dicts for the per-member callbacks the
  flush credits must invoke;
* **one runner process** serves every group: the next wakeup is the
  vectorized ``min`` over the due-time array, the runner sleeps on an
  absolute-time event (``timeout_at``), and each wakeup flushes *all*
  due plan-groups — ``due == now`` over the array — as aggregated
  fair-share flows (``n x dirty`` bytes at ``n x cap``), then advances
  their due times by one interval;
* **plan divergence is an O(1) regroup** — the member's array row is
  rewritten to point at the (possibly fresh) group matching its new
  plan at the current round boundary, instead of tearing down and
  restarting cohort processes.

Equivalence with the per-VM streams (and hence with the group
scheduler) is exact by construction, and the test suite asserts it
bit-for-bit:

* group due times accumulate ``due += interval`` from the join
  instant — the same repeated float addition a per-VM stream's
  ``timeout(interval)`` loop performs, released through ``timeout_at``
  at exactly those instants;
* members only share a group when they enroll at the same instant with
  the same plan (the key is ``(join_time, plan)``), mirroring the
  group scheduler's cohort key, so defer-mode round flags always apply
  to every member of the group;
* each completed round credits each member ``flushed += dirty`` in
  enrollment order (eager mode), or flips one completion flag and
  reconstructs totals at :meth:`settle` through the same shared float
  fold the group scheduler uses (defer mode);
* a parked member (infinite interval) rides an hourly recheck, exactly
  like the per-VM stream's 3600 s liveness sleep.

The aggregated flow carries one fair-share weight instead of ``n``
under mixed contention with unrelated flows — the same deliberate
modelling trade the group scheduler documents in docs/performance.md.
"""

import numpy as np

from repro.virt.migration.group import _INF, _plan_of

__all__ = ["SoaCheckpointScheduler"]

#: Liveness recheck period for parked (infinite-interval) groups,
#: matching the per-VM stream's hourly sleep.
_PARK_RECHECK_S = 3600.0

#: Initial capacity of the member/group arrays (doubled on demand).
_MIN_CAPACITY = 16


def _grown(array, capacity):
    fresh = np.empty(capacity, dtype=array.dtype)
    fresh[:len(array)] = array
    return fresh


class SoaCheckpointScheduler:
    """Batched steady-state checkpointing, struct-of-arrays core.

    Drop-in for :class:`GroupCheckpointScheduler`: same constructor
    shape, same ``join`` / ``leave`` / ``settle`` / ``settle_now`` /
    ``stats`` surface, same eager/defer accounting contract.

    Parameters
    ----------
    env:
        Simulation environment.
    backup_link:
        Transfer facade (``.transfer(nbytes, rate_cap=...)`` returning
        a completion event).
    defer_accounting:
        When True, rounds cost O(1) regardless of group size and
        per-member totals are settled once at :meth:`settle` (fleet
        mode); plans are pinned at join, as in the group scheduler.
        When False (default), every round credits every member eagerly
        and divergent members regroup at round boundaries.
    """

    def __init__(self, env, backup_link, defer_accounting=False):
        self.env = env
        self.link = backup_link
        self.defer = defer_accounting
        #: member_id -> cumulative flushed bytes.
        self.flushed = {}

        # -- member arrays (slot-indexed) --
        self._m_interval = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._m_dirty = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._m_cap = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._m_group = np.full(_MIN_CAPACITY, -1, dtype=np.int64)
        self._m_slot = {}     # member_id -> slot
        self._free_slots = []
        self._slot_high = 0

        # -- plan-group arrays (gid-indexed, append-only) --
        self._g_interval = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._g_dirty = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._g_cap = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._g_due = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._g_count = np.zeros(_MIN_CAPACITY, dtype=np.int64)
        self._n_groups = 0
        self._alive_groups = 0
        #: gid -> plan tuple / member dicts / defer bookkeeping.
        self._g_plan = []
        self._g_members = []   # gid -> {member_id: on_flush} (ordered)
        self._g_streams = []   # gid -> {member_id: stream}
        self._g_rounds = []    # gid -> rounds armed (dirty > 0)
        self._g_flags = []     # gid -> per-round completion flags (defer)
        self._g_left = []      # gid -> {member_id: rounds at departure}

        #: (join_time, plan) -> gid, mirroring the group scheduler's
        #: cohort key: sharing requires the same instant AND plan, so
        #: defer-mode flags always cover a member's full tenure.
        self._open = {}
        self._members = {}     # member_id -> gid

        self._proc = None
        self._stop = env.event()
        self._nudge = None
        self._wake_at = _INF
        self._in_flight = []
        self._settled = False
        self.groups_created = 0
        self.flows_issued = 0
        self.splits = 0

    # -- enrollment -----------------------------------------------------

    def join(self, member_id, stream, on_flush=None):
        """Enroll a stream; returns the plan-group id it landed in.

        Members with identical plans joining at the same instant share
        a group; everyone else gets their own (exact per-VM mode).
        """
        if member_id in self._members:
            raise ValueError(f"{member_id} already enrolled")
        plan = _plan_of(stream)
        slot = self._new_slot(member_id)
        gid = self._enroll(member_id, stream, on_flush, plan, slot)
        self._ensure_runner()
        return gid

    def leave(self, member_id):
        """Drop a member from future rounds.

        Rounds already in flight still credit it (matching a per-VM
        stream draining its in-flight flushes after its stop event).
        """
        gid = self._members.pop(member_id, None)
        if gid is None:
            return
        self._g_members[gid].pop(member_id, None)
        self._g_streams[gid].pop(member_id, None)
        if self.defer:
            self._g_left[gid][member_id] = self._g_rounds[gid]
        self._count_down(gid)
        slot = self._m_slot.pop(member_id)
        self._m_group[slot] = -1
        self._free_slots.append(slot)

    def member_count(self):
        return len(self._members)

    def group_of(self, member_id):
        """The plan-group id currently serving ``member_id``."""
        return self._members.get(member_id)

    def group_plan(self, gid):
        """The (interval, dirty, cap) plan of group ``gid``."""
        return self._g_plan[gid]

    def member_plan(self, member_id):
        """The member's plan as stored in the parallel arrays."""
        slot = self._m_slot[member_id]
        return (float(self._m_interval[slot]), float(self._m_dirty[slot]),
                float(self._m_cap[slot]))

    # -- internals ------------------------------------------------------

    def _new_slot(self, member_id):
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = self._slot_high
            if slot == len(self._m_interval):
                capacity = 2 * slot
                self._m_interval = _grown(self._m_interval, capacity)
                self._m_dirty = _grown(self._m_dirty, capacity)
                self._m_cap = _grown(self._m_cap, capacity)
                self._m_group = _grown(self._m_group, capacity)
            self._slot_high += 1
        self._m_slot[member_id] = slot
        return slot

    def _new_group(self, plan):
        gid = self._n_groups
        if gid == len(self._g_due):
            capacity = 2 * gid
            self._g_interval = _grown(self._g_interval, capacity)
            self._g_dirty = _grown(self._g_dirty, capacity)
            self._g_cap = _grown(self._g_cap, capacity)
            self._g_due = _grown(self._g_due, capacity)
            self._g_count = _grown(self._g_count, capacity)
        self._n_groups += 1
        interval, dirty, cap = plan
        self._g_interval[gid] = interval
        self._g_dirty[gid] = dirty
        self._g_cap[gid] = cap
        # A parked group (infinite interval) wakes for an hourly
        # liveness recheck; a live group wakes one interval from its
        # creation — both exactly as a fresh per-VM stream would.
        if interval == _INF:
            self._g_due[gid] = self.env.now + _PARK_RECHECK_S
        else:
            self._g_due[gid] = self.env.now + interval
        self._g_count[gid] = 0
        self._g_plan.append(plan)
        self._g_members.append({})
        self._g_streams.append({})
        self._g_rounds.append(0)
        self._g_flags.append([])
        self._g_left.append({})
        self._alive_groups += 1
        self.groups_created += 1
        return gid

    def _enroll(self, member_id, stream, on_flush, plan, slot):
        key = (self.env.now, plan)
        gid = self._open.get(key)
        if gid is None or self._g_count[gid] == 0:
            gid = self._new_group(plan)
            self._open[key] = gid
        self._g_members[gid][member_id] = on_flush
        self._g_streams[gid][member_id] = stream
        self._g_count[gid] += 1
        interval, dirty, cap = plan
        self._m_interval[slot] = interval
        self._m_dirty[slot] = dirty
        self._m_cap[slot] = cap
        self._m_group[slot] = gid
        self._members[member_id] = gid
        # Re-aim a sleeping runner whose target postdates the new
        # group's first due time.
        nudge = self._nudge
        if nudge is not None and not nudge.triggered \
                and self._g_due[gid] < self._wake_at:
            nudge.succeed()
        return gid

    def _count_down(self, gid):
        self._g_count[gid] -= 1
        if self._g_count[gid] == 0:
            # Event elision: a dead group never wakes the runner again.
            self._g_due[gid] = _INF
            self._alive_groups -= 1

    def _ensure_runner(self):
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._run())

    def _run(self):
        env = self.env
        while self._alive_groups > 0 and not self._stop.triggered:
            dues = self._g_due[:self._n_groups]
            target = float(dues.min())
            if target == _INF:
                break
            self._wake_at = target
            nudge = env.event()
            self._nudge = nudge
            yield env.any_of([self._stop, nudge,
                              env.timeout_at(target)])
            self._nudge = None
            if self._stop.triggered:
                break
            if env.now < target:
                # Nudged awake by a join with an earlier due time:
                # re-aim (the abandoned timeout fires into an already
                # settled condition and is defused).
                continue
            now = env.now
            due = np.nonzero(
                self._g_due[:self._n_groups] == now)[0]
            for gid in due:
                self._fire(int(gid))
            if self._in_flight:
                self._in_flight = [p for p in self._in_flight
                                   if p.is_alive]
        pending = [p for p in self._in_flight if p.is_alive]
        if pending:
            yield env.all_of(pending)
        self._in_flight = []

    def _fire(self, gid):
        interval = float(self._g_interval[gid])
        if interval == _INF:
            self._g_due[gid] = self.env.now + _PARK_RECHECK_S
            if not self.defer:
                self._regroup_divergent(gid)
            return
        dirty = float(self._g_dirty[gid])
        if dirty > 0:
            self._arm_flush(gid, dirty)
        # The same float accumulation as the per-VM stream's repeated
        # ``timeout(interval)``: now == due exactly at this instant.
        self._g_due[gid] = float(self._g_due[gid]) + interval
        # Regroup *after* arming: this round's flush used the plan the
        # members slept under, exactly as the per-VM loop flushes the
        # interval it just waited out.  Defer mode pins plans at join.
        if not self.defer:
            self._regroup_divergent(gid)

    def _arm_flush(self, gid, dirty):
        env = self.env
        members = self._g_members[gid]
        n = len(members)
        cap = float(self._g_cap[gid])
        round_index = self._g_rounds[gid]
        self._g_rounds[gid] += 1
        self.flows_issued += 1
        if self.defer:
            snapshot = None
            flags = self._g_flags[gid]
            flags.append(False)
        else:
            snapshot = list(members.items())
            flags = None

        def _flush():
            yield self.link.transfer(dirty * n, rate_cap=cap * n)
            if flags is not None:
                flags[round_index] = True
            else:
                flushed = self.flushed
                for member_id, on_flush in snapshot:
                    flushed[member_id] = \
                        flushed.get(member_id, 0.0) + dirty
                    if on_flush is not None:
                        on_flush(dirty)
            obs = getattr(env, "obs", None)
            if obs is not None:
                obs.emit("checkpoint.group_flush", members=n,
                         bytes=dirty * n, round=round_index + 1)
                obs.metrics.counter("checkpoint_flushes_total").inc(n)
                obs.metrics.counter(
                    "checkpoint_bytes_total").inc(dirty * n)

        self._in_flight.append(env.process(_flush()))

    def _regroup_divergent(self, gid):
        """Recompute member plans; regroup divergent members in O(1).

        A divergent member's array row is rewritten to point at the
        plan-group matching its new plan at the current round boundary
        — the instant a per-VM stream would have started sleeping under
        its new interval — so no processes are torn down or created.
        """
        plan = self._g_plan[gid]
        streams = self._g_streams[gid]
        divergent = []
        for member_id, stream in streams.items():
            new_plan = _plan_of(stream)
            if new_plan != plan:
                divergent.append((member_id, stream, new_plan))
        for member_id, stream, new_plan in divergent:
            on_flush = self._g_members[gid].pop(member_id)
            streams.pop(member_id)
            self._count_down(gid)
            del self._members[member_id]
            self.splits += 1
            self._enroll(member_id, stream, on_flush, new_plan,
                         self._m_slot[member_id])

    # -- settlement -----------------------------------------------------

    def settle(self):
        """Process: stop the runner, drain flows, finalize credits.

        Returns the ``{member_id: flushed_bytes}`` dict (also available
        as :attr:`flushed` afterwards).
        """
        if self._settled:
            return self.flushed
        self._settled = True
        if not self._stop.triggered:
            self._stop.succeed()
        if self._proc is not None and self._proc.is_alive:
            yield self.env.all_of([self._proc])
        if self.defer:
            self._settle_credits()
        return self.flushed

    def settle_now(self):
        """Synchronous settle for non-process callers (finalize).

        Credits only the rounds that have already completed —
        in-flight flows stay uncredited, exactly as a per-VM stream's
        in-flight flush is uncredited at the measurement horizon.
        """
        if self._settled:
            return self.flushed
        self._settled = True
        if not self._stop.triggered:
            self._stop.succeed()
        if self.defer:
            self._settle_credits()
        return self.flushed

    def _settle_credits(self):
        """Defer mode: reconstruct per-member totals from round flags.

        Per group, the same shared float fold the group scheduler (and
        eager crediting) performs: ``F[k] = F[k-1] + dirty``.
        """
        for gid in range(self._n_groups):
            flags = self._g_flags[gid]
            dirty = self._g_plan[gid][1]
            completed_prefix = [0]
            for flag in flags:
                completed_prefix.append(
                    completed_prefix[-1] + (1 if flag else 0))
            fold = [0.0]
            for _ in range(completed_prefix[-1]):
                fold.append(fold[-1] + dirty)
            rounds = self._g_rounds[gid]
            for member_id, on_flush in self._g_members[gid].items():
                total = fold[completed_prefix[rounds]]
                self.flushed[member_id] = \
                    self.flushed.get(member_id, 0.0) + total
                if on_flush is not None and total > 0:
                    on_flush(total)
            for member_id, last_round in self._g_left[gid].items():
                total = fold[completed_prefix[last_round]]
                self.flushed[member_id] = \
                    self.flushed.get(member_id, 0.0) + total

    # -- introspection --------------------------------------------------

    def stats(self):
        """Counters shaped like ``GroupCheckpointScheduler.stats``.

        Plan-groups report as cohorts so the migration manager's
        aggregation (and the fleet bench) read both cores uniformly;
        regroups report as splits (each is one member leaving its plan
        peer set at a round boundary).
        """
        dues = self._g_due[:self._n_groups]
        return {
            "cohorts_created": self.groups_created,
            "cohorts_active": int(np.count_nonzero(dues < _INF)),
            "members": len(self._members),
            "flows_issued": self.flows_issued,
            "splits": self.splits,
        }
