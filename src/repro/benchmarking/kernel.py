"""Kernel event-throughput benchmark.

A single process cycles through timeouts — the hot loop every
simulation component reduces to — on a bare, uninstrumented
environment.  Each iteration costs one :class:`Timeout` allocation,
one heap push, and one step, so ``events / wall`` is a direct
events-per-second figure for the kernel's schedule/step path.
"""

import time

from repro.sim.kernel import Environment


def _spin(env, n):
    timeout = env.timeout
    for _ in range(n):
        yield timeout(1.0)


def measure_kernel(events=1_000_000, repeats=3, seed=0):
    """Time ``events`` timeout cycles; returns the best of ``repeats``.

    Returns ``{"events", "wall_s", "events_per_sec", "repeats"}`` using
    the fastest repeat (least scheduler noise), as is conventional for
    microbenchmarks.
    """
    if events < 1:
        raise ValueError("events must be positive")
    best = float("inf")
    for _ in range(repeats):
        env = Environment(seed=seed)
        env.process(_spin(env, events))
        started = time.perf_counter()
        env.run()
        best = min(best, time.perf_counter() - started)
    return {
        "events": events,
        "wall_s": best,
        "events_per_sec": events / best,
        "repeats": repeats,
    }
