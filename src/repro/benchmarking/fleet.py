"""Fleet-scale cell benchmark: kernel events vs nested-VM count.

One calm-market SpotCheck cell — a single m3.2xlarge spot pool whose
flat price stays far below the bid, every VM backed up with the
steady-state checkpoint flush running through the group checkpoint
scheduler — is driven twice: once at a small fleet size and once at
fleet scale (100k nested VMs by default).  The batched schedulers'
promise is that fleet size buys (almost) no kernel events: the group
scheduler wakes once per shared checkpoint interval regardless of
cohort size, the condition-driven spare replenisher sleeps at target,
and the pool index answers placement queries without per-VM scans.

``measure_fleet_scaling`` returns both cells' event totals, the
normalized ``events_per_vm_hour`` rate, and the large/small event and
wall-clock ratios ``check_bench_floors`` holds in CI: the 100k-VM cell
must stay under 20x the events of the 10-VM cell and within ~10x its
wall clock — per-VM loops would blow through both by orders of
magnitude.

The cell intentionally consolidates the whole fleet onto ONE scaled
backup server (spec multiplied by the shard count a real deployment
would spread the fleet over, sized from the sustained per-VM stream
rate): the homogeneous fleet then forms a single cohort, which is the
worst case for the scheduler's aggregation bookkeeping and the best
case for event elision — exactly the axis this benchmark guards.
"""

import math
import time

from repro.backup.server import BackupServerSpec
from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.sim.kernel import Environment
from repro.traces.archive import PriceTrace, TraceArchive
from repro.virt.migration.checkpoint import CheckpointStream
from repro.virt.vm import NestedVM

#: Calm-market spot price for the fleet cell, far under the m3.2xlarge
#: on-demand bid, so no revocation machinery ever wakes.
_CALM_PRICE = 0.08

#: Ingest-path utilization target when sizing the consolidated backup
#: server: leave headroom so steady flushes never queue behind each
#: other (a saturated datapath measures backlog, not scheduling).
_INGEST_UTILIZATION = 0.8


def _steady_rate_bps(env, config):
    """Sustained steady-flush rate of one nested VM (class-level fact)."""
    probe = NestedVM(env, M3_CATALOG.get("m3.medium"))
    return CheckpointStream(
        probe.memory, config.mechanism.checkpoint).stream_rate_bps()


def _fleet_backup_spec(n_vms, rate_bps):
    """One backup server scaled to the shard count the fleet needs."""
    base = BackupServerSpec()
    shards = max(math.ceil(
        n_vms * rate_bps
        / (_INGEST_UTILIZATION * base.write_path_bps)), 1)
    return BackupServerSpec(
        net_bps=base.net_bps * shards,
        disk_write_bps=base.disk_write_bps * shards,
        seq_read_bps=base.seq_read_bps * shards,
        rand_read_bps=base.rand_read_bps * shards,
        fadvise_rand_read_bps=base.fadvise_rand_read_bps * shards,
        max_checkpoint_vms=n_vms,
        page_cache_bytes=base.page_cache_bytes * shards,
    ), shards


def _drive_cell(n_vms, days, seed):
    """Run one calm-market fleet cell; returns its measurement dict."""
    env = Environment(seed=seed)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG)
    duration_s = days * 24 * 3600.0
    itype = M3_CATALOG.get("m3.2xlarge")
    archive = TraceArchive()
    archive.add(PriceTrace([0.0, duration_s], [_CALM_PRICE, _CALM_PRICE],
                           itype.name, zone.name, itype.on_demand_price))

    config = SpotCheckConfig(
        hot_spares=2,
        vms_per_backup=n_vms,
        steady_checkpoint_flush=True,
        defer_flush_accounting=True,
    )
    rate_bps = _steady_rate_bps(env, config)
    spec, shards = _fleet_backup_spec(n_vms, rate_bps)
    config.backup_spec = spec

    controller = SpotCheckController(env, api, config)
    controller.install_pools(archive, zone, type_names=[itype.name])
    customer = controller.start_customer("fleet")
    pool = controller.pools.spot_pool(itype.name, zone.name)

    started = time.perf_counter()
    vms = env.run(until=controller.provision_fleet(customer, n_vms,
                                                   pool=pool))
    env.run(until=duration_s)
    controller.finalize()
    wall = time.perf_counter() - started

    if len(vms) != n_vms:
        raise AssertionError(
            f"fleet cell booted {len(vms)} of {n_vms} VMs")
    flush = controller.migrations.flush_drive_stats()
    spares = controller.spares_drive_stats()
    vm_hours = n_vms * days * 24.0
    return {
        "vms": n_vms,
        "hosts": pool.host_count,
        "days": days,
        "backup_shards": shards,
        "events": env.events_processed,
        "events_per_vm_hour": env.events_processed / vm_hours,
        "wall_s": wall,
        "flush_cohorts": flush["cohorts_created"],
        "flush_flows": flush["flows_issued"],
        "spare_wakes": spares["wakes"],
        "spare_polls": spares["polls"],
    }


def measure_fleet_scaling(small_vms=10, large_vms=100_000, days=14.0,
                          seed=11, echo=None):
    """Benchmark the fleet cell at two sizes; returns the comparison.

    Returns a dict with both cells' measurements plus the derived
    ``event_ratio`` (large events / small events — near 1.0 when the
    batched schedulers elide correctly, O(large/small) when any per-VM
    loop survives) and ``wall_ratio`` (large wall / small wall, floored
    at 50 ms per cell so sub-second smoke cells cannot flake the
    ratio).
    """
    if small_vms < 1 or large_vms <= small_vms:
        raise ValueError("need 1 <= small_vms < large_vms")
    if echo is not None:
        echo(f"  small cell: {small_vms} VMs, {days:.0f} days ...")
    small = _drive_cell(small_vms, days, seed)
    if echo is not None:
        echo(f"    {small['events']} events, {small['wall_s']:.2f}s")
        echo(f"  large cell: {large_vms} VMs, {days:.0f} days ...")
    large = _drive_cell(large_vms, days, seed)
    if echo is not None:
        echo(f"    {large['events']} events, {large['wall_s']:.2f}s")
    return {
        "days": days,
        "seed": seed,
        "small": small,
        "large": large,
        "event_ratio": large["events"] / max(small["events"], 1),
        "wall_ratio": max(large["wall_s"], 0.05)
        / max(small["wall_s"], 0.05),
    }
