"""Import real EC2 spot-price history into a trace archive.

The simulation normally runs on synthetic traces, but everything
downstream (markets, policies, statistics, the whole controller)
consumes plain :class:`~repro.traces.archive.PriceTrace` objects — so
users with real data can drive the reproduction with it.  Two formats
are supported:

* the JSON emitted by
  ``aws ec2 describe-spot-price-history`` (the ``SpotPriceHistory``
  array of ``{Timestamp, InstanceType, AvailabilityZone, SpotPrice}``
  records), and
* a generic CSV with ``timestamp,instance_type,availability_zone,
  spot_price`` columns (the format of the third-party archives the
  paper cites [21]).

Timestamps may be ISO-8601 strings or epoch seconds; each market's
series is sorted and de-duplicated on import.
"""

import csv
import json
from datetime import datetime, timezone

from repro.traces.archive import PriceTrace, TraceArchive


def _parse_timestamp(value):
    """Epoch seconds from an ISO-8601 string or a number."""
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip()
    try:
        return float(text)
    except ValueError:
        pass
    # ISO-8601, with or without a trailing Z.
    if text.endswith("Z"):
        text = text[:-1] + "+00:00"
    parsed = datetime.fromisoformat(text)
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed.timestamp()


def _build_archive(records, on_demand_prices, rebase_time=True):
    """Group raw (time, type, zone, price) records into an archive.

    ``on_demand_prices`` maps instance type name -> $/hr (needed for
    every ratio statistic).  Markets without a known on-demand price
    are skipped.  With ``rebase_time`` the earliest record across all
    markets becomes t=0.
    """
    markets = {}
    for when, type_name, zone_name, price in records:
        markets.setdefault((type_name, zone_name), []).append((when, price))

    origin = None
    if rebase_time and markets:
        origin = min(when for series in markets.values()
                     for when, _price in series)

    archive = TraceArchive()
    skipped = []
    for (type_name, zone_name), series in sorted(markets.items()):
        if type_name not in on_demand_prices:
            skipped.append((type_name, zone_name))
            continue
        series.sort()
        times, prices = [], []
        for when, price in series:
            if rebase_time:
                when -= origin
            if times and when == times[-1]:
                prices[-1] = price  # keep the later record
                continue
            times.append(when)
            prices.append(price)
        archive.add(PriceTrace(times, prices, type_name, zone_name,
                               on_demand_prices[type_name]))
    return archive, skipped


def load_aws_json(path, on_demand_prices, rebase_time=True):
    """Import ``describe-spot-price-history`` JSON.

    Returns ``(archive, skipped_markets)``.
    """
    with open(path) as handle:
        document = json.load(handle)
    raw = document.get("SpotPriceHistory", document)
    if not isinstance(raw, list):
        raise ValueError(
            "expected a SpotPriceHistory array or a top-level list")
    records = []
    for entry in raw:
        records.append((
            _parse_timestamp(entry["Timestamp"]),
            entry["InstanceType"],
            entry["AvailabilityZone"],
            float(entry["SpotPrice"]),
        ))
    return _build_archive(records, on_demand_prices, rebase_time)


def load_csv(path, on_demand_prices, rebase_time=True):
    """Import a generic price-history CSV.

    Required columns: ``timestamp``, ``instance_type``,
    ``availability_zone``, ``spot_price`` (extra columns are ignored;
    header names are case-insensitive).
    """
    records = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError("empty CSV")
        fields = {name.lower().strip(): name for name in reader.fieldnames}
        required = ("timestamp", "instance_type", "availability_zone",
                    "spot_price")
        missing = [column for column in required if column not in fields]
        if missing:
            raise ValueError(f"CSV missing columns: {', '.join(missing)}")
        for row in reader:
            records.append((
                _parse_timestamp(row[fields["timestamp"]]),
                row[fields["instance_type"]].strip(),
                row[fields["availability_zone"]].strip(),
                float(row[fields["spot_price"]]),
            ))
    return _build_archive(records, on_demand_prices, rebase_time)
