"""Group checkpoint scheduling: one wakeup per cohort, not per VM.

At fleet scale the per-VM steady-state checkpoint processes of
:class:`~repro.virt.migration.checkpoint.CheckpointStream` dominate the
kernel event budget: every VM wakes every interval to arm a flush, so
idle fleet size costs O(VMs) events per interval.  But SpotCheck pools
are *homogeneous* — every nested VM of one (pool, mechanism) runs the
same instance type and workload profile, so their steady-state plans
(interval, dirty volume per round, stream throttle) are identical.

The :class:`GroupCheckpointScheduler` exploits that: members with the
same plan that join at the same instant form a **cohort** sharing one
scheduler process.  The cohort wakes once per interval, issues *one*
aggregated flow (``n x dirty`` bytes at ``n x cap``) through the
fair-share backup datapath, and credits every member on completion.

Equivalence with per-VM streams is exact by construction:

* cohort wake times reproduce the per-VM loop bit-for-bit — the same
  ``timeout(interval)`` accumulation from the same join instant;
* each completed round credits each member ``flushed += dirty``, the
  same repeated float addition the per-VM flush performs;
* members whose recomputed plan diverges from the cohort's are split
  off into fresh (usually singleton) cohorts at the round boundary —
  exactly where a per-VM stream would have adopted the new interval —
  so heterogeneous fleets degrade gracefully to exact per-VM mode;
* a member joining mid-interval starts its own cohort at its join
  time, just as a fresh per-VM stream would.

The aggregated flow matches ``n`` separate flows whenever the cohort's
flows are either capacity-bound together or cap-bound individually
(min(n*cap, C) == n*min(cap, C/n)); under *mixed* contention with
unrelated flows the aggregate carries one fair-share weight instead of
``n``, a deliberate modelling trade documented in docs/performance.md.

Two accounting modes:

* **eager** (default): every round credits every member — bit-identical
  observable state at any instant, used by the equivalence tests;
* **defer**: rounds only flip an O(1) completion flag; per-member
  totals are reconstructed at :meth:`settle` through a shared
  fold cache (``F[k] = F[k-1] + dirty``, the same sequential fold
  eager crediting performs), so a 100k-member cohort costs O(1) per
  round instead of O(n).
"""

from repro.virt.memory import MemoryModel

__all__ = ["GroupCheckpointScheduler"]

_INF = float("inf")

#: Plan cache keyed by (memory, config) — both frozen dataclasses whose
#: plans are pure functions of their fields, so a 100k-VM fleet pays
#: the iterative interval solve once per workload class, not per VM.
#: Only genuine :class:`MemoryModel` instances are cached; test doubles
#: with time-varying behaviour (the divergence-fallback tests) bypass
#: the cache and are re-solved every round.
_PLAN_CACHE = {}


def _plan_of(stream):
    """The (interval, dirty, cap) steady-state plan of one stream."""
    cacheable = type(stream.memory) is MemoryModel
    if cacheable:
        key = (stream.memory, stream.config)
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            return plan
    interval = stream.interval_s()
    if interval == _INF:
        dirty = 0.0
    else:
        dirty = stream.memory.dirty_bytes(interval)
    plan = (interval, dirty, stream.config.stream_bandwidth_bps)
    if cacheable and len(_PLAN_CACHE) < 4096:
        _PLAN_CACHE[key] = plan
    return plan


class _Cohort:
    """One shared checkpoint loop over members with an identical plan."""

    __slots__ = ("sched", "plan", "created_at", "members", "streams",
                 "stop", "proc", "in_flight", "rounds_armed",
                 "flags", "left_at_round")

    def __init__(self, sched, plan):
        self.sched = sched
        self.plan = plan
        self.created_at = sched.env.now
        #: member_id -> on_flush callback (insertion-ordered).
        self.members = {}
        #: member_id -> stream (for divergence rechecks).
        self.streams = {}
        self.stop = sched.env.event()
        self.in_flight = []
        #: Rounds armed with a positive dirty volume.
        self.rounds_armed = 0
        #: Per-round completion flags (defer mode).
        self.flags = []
        #: member_id -> rounds_armed at departure (defer mode).
        self.left_at_round = {}
        self.proc = sched.env.process(self._run())

    @property
    def size(self):
        return len(self.members)

    def _run(self):
        env = self.sched.env
        while self.members and not self.stop.triggered:
            interval, dirty, _cap = self.plan
            if interval == _INF:
                # Parked, like the per-VM stream: recheck hourly.
                yield env.any_of([self.stop, env.timeout(3600.0)])
                if self.stop.triggered:
                    break
                self._replan()
                continue
            yield env.any_of([self.stop, env.timeout(interval)])
            if self.stop.triggered:
                break
            if not self.members:
                break
            if dirty > 0:
                self._arm_flush(dirty)
            # Replan *after* arming: this round's flush uses the plan
            # the members slept under, exactly as the per-VM loop
            # flushes the interval it just waited out.
            self._replan()
        pending = [p for p in self.in_flight if p.is_alive]
        if pending:
            yield env.all_of(pending)

    def _arm_flush(self, dirty):
        sched = self.sched
        env = sched.env
        if sched.defer:
            # O(1) per round: membership is only needed for eager
            # crediting; defer mode reconstructs totals at settle.
            snapshot = None
            n = len(self.members)
        else:
            snapshot = list(self.members.items())
            n = len(snapshot)
        _interval, _dirty, cap = self.plan
        round_index = self.rounds_armed
        self.rounds_armed += 1
        sched.flows_issued += 1
        if sched.defer:
            self.flags.append(False)
        # Prune completed flows on every arm: a healthy cohort keeps at
        # most a flush or two in flight (flush time < interval), and a
        # dead process reference would otherwise pin its frame for the
        # cohort's whole life — a slow leak under fleet-length runs.
        if self.in_flight:
            self.in_flight = [p for p in self.in_flight if p.is_alive]

        def _flush():
            yield sched.link.transfer(dirty * n, rate_cap=cap * n)
            if sched.defer:
                self.flags[round_index] = True
            else:
                flushed = sched.flushed
                for member_id, on_flush in snapshot:
                    flushed[member_id] = flushed.get(member_id, 0.0) + dirty
                    if on_flush is not None:
                        on_flush(dirty)
            obs = getattr(env, "obs", None)
            if obs is not None:
                obs.emit("checkpoint.group_flush", members=n,
                         bytes=dirty * n, round=round_index + 1)
                obs.metrics.counter("checkpoint_flushes_total").inc(n)
                obs.metrics.counter("checkpoint_bytes_total").inc(dirty * n)

        self.in_flight.append(env.process(_flush()))

    def _replan(self):
        """Recompute member plans; split divergent members off.

        A split member re-enters :meth:`GroupCheckpointScheduler.join`
        at the current round boundary — the instant a per-VM stream
        would have started sleeping under its new interval — so the
        fallback to exact per-VM (singleton-cohort) mode is lossless.
        Skipped in defer mode, where stream parameters are pinned at
        join (the documented fleet-scale contract).
        """
        if self.sched.defer:
            return
        divergent = []
        for member_id, stream in self.streams.items():
            if _plan_of(stream) != self.plan:
                divergent.append(member_id)
        for member_id in divergent:
            on_flush = self.members.pop(member_id)
            stream = self.streams.pop(member_id)
            self.sched._members.pop(member_id, None)
            self.sched.splits += 1
            self.sched.join(member_id, stream, on_flush=on_flush)

    def remove(self, member_id):
        self.members.pop(member_id, None)
        self.streams.pop(member_id, None)
        if self.sched.defer:
            self.left_at_round[member_id] = self.rounds_armed
        if not self.members and not self.stop.triggered:
            # Event elision: wake the sleeping loop so an empty cohort
            # exits now instead of at its next interval boundary.
            self.stop.succeed()

    def settle_credits(self):
        """Defer mode: reconstruct per-member totals from round flags."""
        sched = self.sched
        _interval, dirty, _cap = self.plan
        completed_prefix = [0]
        for flag in self.flags:
            completed_prefix.append(completed_prefix[-1] + (1 if flag else 0))
        # Shared fold cache: F[k] is what k eager credits of `dirty`
        # would have accumulated (same sequential float fold).
        fold = [0.0]
        for _ in range(completed_prefix[-1]):
            fold.append(fold[-1] + dirty)
        for member_id, on_flush in self.members.items():
            credits = completed_prefix[self.rounds_armed]
            total = fold[credits]
            sched.flushed[member_id] = \
                sched.flushed.get(member_id, 0.0) + total
            if on_flush is not None and total > 0:
                on_flush(total)
        for member_id, last_round in self.left_at_round.items():
            credits = completed_prefix[last_round]
            total = fold[credits]
            sched.flushed[member_id] = \
                sched.flushed.get(member_id, 0.0) + total


class GroupCheckpointScheduler:
    """Batched steady-state checkpointing over one backup datapath.

    Parameters
    ----------
    env:
        Simulation environment.
    backup_link:
        Transfer facade (``.transfer(nbytes, rate_cap=...)`` returning a
        completion event) — a ``FairShareLink`` or a backup server's
        ``ingest``.
    defer_accounting:
        When True, rounds cost O(1) regardless of cohort size and
        per-member totals are settled once at :meth:`settle` (fleet
        mode).  When False (default), every round credits every member
        eagerly — bit-identical to per-VM streams at any instant.
    """

    def __init__(self, env, backup_link, defer_accounting=False):
        self.env = env
        self.link = backup_link
        self.defer = defer_accounting
        #: member_id -> cumulative flushed bytes.
        self.flushed = {}
        #: (join_time, plan) -> open cohort.
        self._open = {}
        self._all_cohorts = []
        self._members = {}
        self._settled = False
        self.cohorts_created = 0
        self.flows_issued = 0
        self.splits = 0

    def join(self, member_id, stream, on_flush=None):
        """Enroll a stream; returns the cohort it landed in.

        Members with identical plans joining at the same instant share
        a cohort; everyone else gets their own (exact per-VM mode).
        """
        if member_id in self._members:
            raise ValueError(f"{member_id} already enrolled")
        plan = _plan_of(stream)
        key = (self.env.now, plan)
        cohort = self._open.get(key)
        if cohort is None or cohort.stop.triggered:
            cohort = _Cohort(self, plan)
            self._open[key] = cohort
            self._all_cohorts.append(cohort)
            self.cohorts_created += 1
        cohort.members[member_id] = on_flush
        cohort.streams[member_id] = stream
        self._members[member_id] = cohort
        return cohort

    def leave(self, member_id):
        """Drop a member from future rounds.

        Rounds already in flight still credit it (matching a per-VM
        stream draining its in-flight flushes after its stop event).
        """
        cohort = self._members.pop(member_id, None)
        if cohort is not None:
            cohort.remove(member_id)

    def member_count(self):
        return len(self._members)

    def cohort_of(self, member_id):
        return self._members.get(member_id)

    def settle(self):
        """Process: stop all cohorts, drain flows, finalize credits.

        Returns the ``{member_id: flushed_bytes}`` dict (also available
        as :attr:`flushed` afterwards).
        """
        if self._settled:
            return self.flushed
        self._settled = True
        procs = []
        for cohort in self._all_cohorts:
            if not cohort.stop.triggered:
                cohort.stop.succeed()
            if cohort.proc.is_alive:
                procs.append(cohort.proc)
        if procs:
            yield self.env.all_of(procs)
        if self.defer:
            for cohort in self._all_cohorts:
                cohort.settle_credits()
        return self.flushed

    def settle_now(self):
        """Synchronous settle for non-process callers (finalize).

        Stops every cohort and finalizes credits from the rounds that
        have *already completed* — in-flight flows stay uncredited,
        exactly as a per-VM stream's in-flight flush is uncredited at
        the measurement horizon.  Returns the totals dict.
        """
        if self._settled:
            return self.flushed
        self._settled = True
        for cohort in self._all_cohorts:
            if not cohort.stop.triggered:
                cohort.stop.succeed()
        if self.defer:
            for cohort in self._all_cohorts:
                cohort.settle_credits()
        return self.flushed

    def stats(self):
        """Counters mirroring ``SpotMarket.drive_stats``'s shape."""
        active = sum(1 for c in self._all_cohorts if c.proc.is_alive)
        return {
            "cohorts_created": self.cohorts_created,
            "cohorts_active": active,
            "members": len(self._members),
            "flows_issued": self.flows_issued,
            "splits": self.splits,
        }
