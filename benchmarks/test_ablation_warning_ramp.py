"""Ablation: the checkpoint-frequency ramp during the warning period.

SpotCheck's improvement over Yank (Section 5): "our implementation
increases the checkpointing frequency after receiving a warning, which
reduces the amount of dirty pages the nested VM must transfer ...
we reduce downtime at the cost of slightly degrading VM performance
during the warning period."
"""

from repro.experiments.reporting import format_table
from repro.virt.migration.checkpoint import CheckpointStream
from repro.workloads import SpecJbbWorkload, TpcwWorkload

GiB = 1024 ** 3


def sweep():
    rows = []
    for label, workload in (("tpcw", TpcwWorkload()),
                            ("specjbb", SpecJbbWorkload())):
        stream = CheckpointStream(workload.memory_model(int(1.7 * GiB)))
        rows.append({
            "workload": label,
            "yank_commit_s": stream.final_commit_downtime_s(ramped=False),
            "ramped_commit_s": stream.final_commit_downtime_s(ramped=True),
            "yank_degraded_s": stream.warning_degradation_s(120.0,
                                                            ramped=False),
            "ramped_degraded_s": stream.warning_degradation_s(120.0,
                                                              ramped=True),
        })
    return rows


def test_ablation_warning_ramp(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        # The ramp slashes the commit pause by an order of magnitude...
        assert row["ramped_commit_s"] < row["yank_commit_s"] / 10
        # ...in exchange for a degraded (but running) warning window.
        assert row["ramped_degraded_s"] > row["yank_degraded_s"]
        assert row["ramped_degraded_s"] <= 120.0

    text = format_table(
        ["workload", "commit no-ramp (s)", "commit ramped (s)",
         "degraded no-ramp (s)", "degraded ramped (s)"],
        [(row["workload"], f"{row['yank_commit_s']:.1f}",
          f"{row['ramped_commit_s']:.2f}", f"{row['yank_degraded_s']:.0f}",
          f"{row['ramped_degraded_s']:.0f}") for row in rows],
        title=("Ablation — warning-period checkpoint ramp "
               "(SpotCheck) vs single stale-state flush (Yank)"))
    report("ablation_warning_ramp", text)
