"""Retry policy: exponential backoff, full jitter, deadline awareness.

:func:`retry_call` is the single retry loop every control-plane caller
threads through.  It is written as a plain generator so simulation
processes use it via ``yield from``::

    instance = yield from retry_call(
        env, lambda: api.run_instance(...), policy,
        operation="start_spot_instance")

Design points:

* **Exponential backoff with full jitter** — the sleep before attempt
  ``n`` is uniform in ``[0, min(max_delay, base * multiplier^(n-1))]``,
  the decorrelation scheme spot tooling converged on for thundering
  herds of throttled clients.
* **Deadline awareness** — a retry on the revocation path must never
  overrun the remaining warning window: when ``deadline`` is given, a
  backoff that would land past ``deadline - margin`` is not taken; the
  error propagates so the caller can degrade instead.
* **Zero cost when nothing fails** — the jitter RNG stream is only
  created on the first backoff, so a fault-free run draws no random
  numbers and is bit-identical to a run without the retry layer.
"""

from dataclasses import dataclass

from repro.cloud.errors import ApiError

#: Named RNG stream used for backoff jitter.  Separate from every
#: model stream so retry jitter never perturbs market or latency draws.
BACKOFF_STREAM = "faults.retry"


class RetryExhausted(ApiError):
    """The attempt budget (or the deadline) ran out.

    Carries the last underlying error as ``__cause__``; terminal by
    construction (``retryable=False``) so an outer retry loop never
    re-retries an inner exhaustion.
    """

    def __init__(self, message, operation=None, attempts=0):
        super().__init__(message, operation=operation, retryable=False)
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Budgeted exponential backoff with full jitter.

    Attributes
    ----------
    max_attempts:
        Total tries, including the first (8 preserves the request
        flow's historical placement-attempt budget).
    base_delay_s / multiplier / max_delay_s:
        Backoff cap before attempt ``n`` is
        ``min(max_delay_s, base_delay_s * multiplier**(n-1))``; the
        actual sleep is uniform in ``[0, cap]`` (full jitter).
    deadline_margin_s:
        Safety margin subtracted from any deadline: a retry is only
        taken if the backoff lands ``margin`` clear of the deadline.
    """

    max_attempts: int = 8
    base_delay_s: float = 2.0
    multiplier: float = 2.0
    max_delay_s: float = 60.0
    deadline_margin_s: float = 5.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")

    def backoff_cap_s(self, attempt):
        """Backoff ceiling before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        cap = self.base_delay_s
        if self.multiplier > 1.0:
            # Multiply up instead of ``multiplier ** (attempt - 1)``:
            # an unbounded attempt count (a patient loop riding out an
            # hours-long capacity outage) would overflow the power.
            for _ in range(attempt - 1):
                if cap >= self.max_delay_s:
                    break
                cap *= self.multiplier
        return min(cap, self.max_delay_s)

    def backoff_s(self, attempt, rng=None):
        """Draw the jittered backoff before retry number ``attempt``."""
        cap = self.backoff_cap_s(attempt)
        if rng is None or cap <= 0.0:
            return cap
        return float(rng.uniform(0.0, cap))

    def allows(self, attempt, now=None, deadline=None, delay=0.0):
        """Whether retry number ``attempt`` may be taken.

        ``attempt`` counts retries already used (the first call is
        attempt 0); ``deadline`` (with ``now``) vetoes a retry whose
        backoff would land inside the deadline margin.
        """
        if attempt >= self.max_attempts:
            return False
        if deadline is not None and now is not None:
            return now + delay + self.deadline_margin_s < deadline
        return True


def retry_call(env, factory, policy, operation, deadline=None):
    """Generator: run ``factory()`` to completion, retrying transients.

    ``factory`` must return a fresh process/event per call (e.g.
    ``lambda: api.run_instance(...)``).  Transient
    :class:`~repro.cloud.errors.ApiError` failures are retried with
    jittered exponential backoff until the policy's attempt budget or
    the ``deadline`` (simulated-time) is exhausted, at which point
    :class:`RetryExhausted` is raised from the last error.  Terminal
    errors (``retryable=False``) and non-``ApiError`` exceptions
    propagate immediately.

    Every retry emits ``retry.backoff`` plus the ``retries_total`` /
    ``retry_backoff_seconds`` metrics when observability is attached.
    """
    attempts = 0
    while True:
        try:
            result = yield factory()
            return result
        except ApiError as exc:
            if not exc.retryable:
                raise
            attempts += 1
            rng = env.rng.stream(BACKOFF_STREAM)
            delay = policy.backoff_s(attempts, rng)
            if not policy.allows(attempts, now=env.now, deadline=deadline,
                                 delay=delay):
                raise RetryExhausted(
                    f"{operation}: gave up after {attempts} failed "
                    f"attempt{'s' if attempts != 1 else ''}",
                    operation=operation, attempts=attempts) from exc
            obs = env.obs
            if obs is not None:
                obs.emit("retry.backoff", operation=operation,
                         attempt=attempts, delay_s=delay,
                         error=type(exc).__name__)
                obs.metrics.counter("retries_total",
                                    operation=operation).inc()
                obs.metrics.histogram(
                    "retry_backoff_seconds").observe(delay)
            if delay > 0:
                yield env.timeout(delay)
