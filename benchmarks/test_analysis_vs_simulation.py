"""Section 4.4's analytical model vs the full simulator.

The paper derives expected cost and availability analytically from the
price CDF, then validates the design by simulation.  This bench closes
that loop in the reproduction: the closed-form prediction for the
1P-M policy must agree with the end-to-end controller simulation on
the same trace.
"""

import pytest

from repro.core.analysis import predict
from repro.experiments.policy_grid import run_cell, shared_archive
from repro.experiments.reporting import format_table

DAYS = 90.0
VMS = 40
SEED = 11


def sweep():
    archive = shared_archive(SEED, DAYS)
    simulated = run_cell("1P-M", "spotcheck-lazy", seed=SEED, days=DAYS,
                         vms=VMS, archive=archive)
    trace = archive.get("m3.medium", "us-east-1a")
    analytic = predict(
        trace,
        backup_share_per_hour=0.28 / VMS,
        downtime_per_migration_s=23.0,
        degraded_per_migration_s=90.0,
        migrations_per_revocation=2.0)
    return analytic, simulated


def test_analysis_predicts_simulation(benchmark, report):
    analytic, simulated = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Cost: the closed form must land within ~20% of the simulator
    # (the simulator additionally pays allocation transients and the
    # return hold-down window).
    assert simulated["cost_per_vm_hour"] == pytest.approx(
        analytic.expected_cost_per_hour, rel=0.20)

    # Availability: same order of magnitude of *un*availability.
    sim_unavail = 1.0 - simulated["availability"]
    if analytic.expected_unavailability > 0:
        ratio = sim_unavail / analytic.expected_unavailability
        assert 0.2 < ratio < 5.0

    rows = [
        ("cost $/VM-hr", f"${analytic.expected_cost_per_hour:.4f}",
         f"${simulated['cost_per_vm_hour']:.4f}"),
        ("unavailability %", f"{100 * analytic.expected_unavailability:.4f}%",
         f"{simulated['unavailability_pct']:.4f}%"),
        ("revocations/hr", f"{analytic.revocation_rate_per_hour:.5f}",
         f"{simulated['revocation_events'] / (DAYS * 24):.5f}"),
    ]
    text = format_table(
        ["metric", "Section 4.4 model", "full simulation"],
        rows,
        title=(f"Analytical model vs simulation (1P-M, {VMS} VMs, "
               f"{DAYS:.0f} days)"))
    report("analysis_vs_simulation", text)
