"""Property-based tests for the latency distribution fits."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.cloud.latency import LatencySpec, SplitPowerLatency, \
    fit_latency_sampler
from repro.sim.rng import RngRegistry


@st.composite
def latency_specs(draw):
    low = draw(st.floats(min_value=0.5, max_value=100.0))
    median = low + draw(st.floats(min_value=0.1, max_value=200.0))
    high = median + draw(st.floats(min_value=0.1, max_value=400.0))
    # A mean anywhere strictly between the achievable extremes.
    fraction = draw(st.floats(min_value=0.05, max_value=0.95))
    mean = low + fraction * (high - low)
    assume(low <= mean <= high)
    return LatencySpec("prop", median=median, mean=mean, max=high, min=low)


class TestSplitPowerProperties:
    @given(latency_specs())
    @settings(max_examples=80, deadline=None)
    def test_closed_form_median_exact(self, spec):
        sampler = SplitPowerLatency(spec)
        assert sampler.median() == pytest.approx(spec.median)

    @given(latency_specs())
    @settings(max_examples=80, deadline=None)
    def test_closed_form_mean_close(self, spec):
        # Exact whenever the target mean is reachable with the fixed
        # lower exponent; clamped k values may deviate, but only when
        # the spec demands mass the family cannot place.
        sampler = SplitPowerLatency(spec)
        reachable_low = spec.median - \
            0.5 * (spec.median - spec.min) / 3.0
        reachable_high = spec.median + \
            0.5 * (spec.max - spec.median) / 1.05 - \
            0.5 * (spec.median - spec.min) / 3.0
        if reachable_low <= spec.mean <= reachable_high:
            assert sampler.mean() == pytest.approx(spec.mean, rel=0.01)

    @given(latency_specs(), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=60, deadline=None)
    def test_samples_always_in_range(self, spec, seed):
        sampler = fit_latency_sampler(spec)
        rng = RngRegistry(seed).stream("prop")
        draws = np.asarray(sampler.sample(rng, size=500))
        assert draws.min() >= spec.min - 1e-9
        assert draws.max() <= spec.max + 1e-9

    @given(latency_specs())
    @settings(max_examples=40, deadline=None)
    def test_fit_median_matches_at_scale(self, spec):
        sampler = fit_latency_sampler(spec)
        if isinstance(sampler, SplitPowerLatency) and sampler._k < 1.0:
            # Extreme skew (mean deep in the upper range): *any*
            # distribution matching all four statistics must leave a
            # density gap just above the median, so the empirical
            # median is knife-edge there.  No Table 1 operation is in
            # this regime; only the closed-form median is checked.
            assert sampler.median() == pytest.approx(spec.median)
            return
        rng = RngRegistry(17).stream("prop-median")
        draws = np.asarray(sampler.sample(rng, size=6000))
        # Whatever family was picked, the sampled median must track
        # the spec within a band scaled to the spec's span (sampling
        # noise around the median maps through the local density,
        # which flattens as the range stretches).
        assert np.median(draws) == pytest.approx(
            spec.median, rel=0.15,
            abs=max(0.30, 0.03 * (spec.max - spec.min)))
