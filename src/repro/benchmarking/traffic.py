"""Traffic-engine microbenchmark: kernel events vs request volume.

The same two-day scenario — one customer, one VM with a scripted
migration/suspend/restore churn schedule, a diurnal + flash-crowd
arrival pattern — is driven twice, with the per-user pattern scaled to
two wildly different user counts (1e3 and 1e6 by default).  The
engine's promise is that request volume buys *zero* kernel events:
both cells must finish with the identical wake and segment counts, and
only the accounted request total may differ (by exactly the scale
ratio, since the integrals are closed-form).  A mismatch raises
``AssertionError`` — that means some per-request or per-volume path
crept into the engine — and ``check_bench_floors`` holds the equality
in CI from the recorded artifact.
"""

import time

from repro.cloud.instance_types import M3_CATALOG
from repro.core.customer import Customer
from repro.sim.kernel import Environment
from repro.traffic import (
    CustomerTraffic,
    DiurnalRate,
    FlashCrowd,
    SlaTarget,
    TrafficEngine,
)
from repro.virt.vm import NestedVM, VMState

#: Per-user arrival pattern: a daily sinusoid plus a flash crowd in
#: the second day's morning.  Scaled by the cell's user count.
_PER_USER_RPS = 0.05


def _churn(env, vm, until):
    """Scripted state churn: a migration every 6 hours, one
    suspend/restore episode per simulated day."""
    hour = 3600.0
    while env.now + 6 * hour < until:
        yield env.timeout(6 * hour - 120.0)
        vm.set_state(VMState.MIGRATING)
        yield env.timeout(90.0)
        vm.set_state(VMState.SUSPENDED)
        yield env.timeout(30.0)
        vm.set_state(VMState.RESTORING)
        yield env.timeout(10 * 60.0)
        vm.set_state(VMState.RUNNING)


def _drive_once(users, days, seed=7):
    env = Environment(seed=seed)
    customer = Customer("bench")
    vm = NestedVM(env, M3_CATALOG.get("m3.medium"), customer=customer)
    customer.add_vm(vm)
    vm.set_state(VMState.RUNNING)

    day = 24 * 3600.0
    until = days * day
    pattern = (DiurnalRate(base_rps=_PER_USER_RPS, amplitude=0.5,
                           period_s=day)
               + FlashCrowd(start_s=1.25 * day,
                            peak_rps=4.0 * _PER_USER_RPS,
                            ramp_s=1800.0, hold_s=7200.0,
                            decay_s=3600.0)).scaled(users)
    engine = TrafficEngine(env, report_interval_s=3600.0)
    engine.watch(customer, CustomerTraffic(
        "bench", pattern,
        SlaTarget(latency_ms=100.0, availability=0.999, window_s=day)))
    env.process(_churn(env, vm, until))
    engine.start(until=until)
    started = time.perf_counter()
    env.run(until=until)
    wall = time.perf_counter() - started
    return wall, engine.drive_stats()


def measure_traffic_scaling(scales=(1_000, 1_000_000), days=2.0, seed=7):
    """Benchmark the traffic engine at two request-volume scales.

    Returns a dict with per-cell user counts, accounted requests, wake
    and segment counters, and wall clock, plus the derived
    ``request_ratio`` (how much more traffic the high cell absorbed)
    and ``wake_ratio`` (which must be exactly 1.0).  Raises
    ``AssertionError`` if the high-volume cell needed even one more
    kernel wake or accounting segment than the low-volume cell.
    """
    if len(scales) != 2 or scales[0] >= scales[1]:
        raise ValueError("scales must be (low, high) with low < high")
    low_users, high_users = scales
    low_wall, low_stats = _drive_once(low_users, days, seed)
    high_wall, high_stats = _drive_once(high_users, days, seed)

    for key in ("wakes", "breakpoint_wakes", "report_wakes",
                "window_rolls", "state_flushes", "segments"):
        if low_stats[key] != high_stats[key]:
            raise AssertionError(
                f"traffic engine {key} scaled with request volume: "
                f"{low_stats[key]} at {low_users} users but "
                f"{high_stats[key]} at {high_users} users")

    return {
        "days": days,
        "seed": seed,
        "low": {
            "users": low_users,
            "requests": low_stats["requests"],
            "wakes": low_stats["wakes"],
            "segments": low_stats["segments"],
            "wall_s": low_wall,
        },
        "high": {
            "users": high_users,
            "requests": high_stats["requests"],
            "wakes": high_stats["wakes"],
            "segments": high_stats["segments"],
            "wall_s": high_wall,
        },
        "request_ratio": high_stats["requests"]
        / max(low_stats["requests"], 1.0),
        "wake_ratio": high_stats["wakes"] / max(low_stats["wakes"], 1),
    }
