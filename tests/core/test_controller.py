"""End-to-end tests for the SpotCheck controller."""

import pytest

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import InstanceState, Market
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.sim.kernel import Environment
from repro.traces.archive import PriceTrace, TraceArchive
from repro.virt.vm import VMState
from repro.workloads import TpcwWorkload

DAY = 24 * 3600.0

#: Spike window used by most tests: prices jump far above on-demand at
#: t=50000 and recover at t=58000.
SPIKE_START = 50000.0
SPIKE_END = 58000.0


def spiky_trace(type_name, od_price, base_ratio=0.2, spike=10.0,
                duration=10 * DAY):
    times = [0.0, SPIKE_START, SPIKE_END, duration]
    base = od_price * base_ratio
    prices = [base, od_price * spike, base, base]
    return PriceTrace(times, prices, type_name, "us-east-1a", od_price)


def quiet_trace(type_name, od_price, base_ratio=0.2, duration=10 * DAY):
    return PriceTrace([0.0, duration], [od_price * base_ratio] * 2,
                      type_name, "us-east-1a", od_price)


def build(config=None, traces=None, on_demand_capacity=None):
    env = Environment(seed=99)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG,
                   on_demand_capacity=on_demand_capacity)
    archive = TraceArchive()
    trace_map = traces or {"m3.medium": spiky_trace("m3.medium", 0.07)}
    for type_name, trace in trace_map.items():
        archive.add(trace)
    controller = SpotCheckController(env, api, config or SpotCheckConfig())
    controller.install_pools(archive, zone)
    return env, api, controller


def launch_fleet(env, controller, count=2, workload_factory=TpcwWorkload):
    def flow():
        customer = controller.start_customer("test")
        vms = []
        for _ in range(count):
            vm = yield controller.request_server(
                customer, workload=workload_factory())
            vms.append(vm)
        return vms
    return env.run(until=env.process(flow()))


class TestRequestServer:
    def test_vm_lands_on_spot_with_backup(self):
        env, api, controller = build()
        [vm] = launch_fleet(env, controller, count=1)
        assert vm.state is VMState.RUNNING
        assert vm.host.instance.market is Market.SPOT
        assert vm.backup_assignment is not None
        assert vm.private_ip is not None
        assert vm.volume.attached_to is vm.host.instance
        assert vm.id in vm.backup_assignment.store._images

    def test_wrong_type_rejected(self):
        env, api, controller = build()
        customer = controller.start_customer("c")
        with pytest.raises(ValueError):
            env.run(until=controller.request_server(
                customer, type_name="m3.large"))

    def test_slicing_reserves_extra_slots(self):
        # 2P-ML maps the second VM to the m3.large pool: one large host
        # sliced into two medium slots; the third request reuses the
        # reserved slot without a new native instance.
        traces = {
            "m3.medium": quiet_trace("m3.medium", 0.07),
            "m3.large": quiet_trace("m3.large", 0.14),
        }
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="2P-ML"), traces)
        vms = launch_fleet(env, controller, count=4)
        large_pool = controller.pools.spot_pool("m3.large", "us-east-1a")
        assert large_pool.vm_count == 2
        assert large_pool.host_count == 1  # sliced, not two instances
        assert large_pool.hosts[0].itype.name == "m3.large"

    def test_slicing_disabled_uses_one_slot_hosts(self):
        traces = {
            "m3.medium": quiet_trace("m3.medium", 0.07),
            "m3.large": quiet_trace("m3.large", 0.14),
        }
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="2P-ML", slicing=False), traces)
        launch_fleet(env, controller, count=4)
        large_pool = controller.pools.spot_pool("m3.large", "us-east-1a")
        assert large_pool.host_count == 2

    def test_bid_too_low_parks_on_demand(self):
        trace = PriceTrace([0.0, 10 * DAY], [0.50, 0.50], "m3.medium",
                           "us-east-1a", 0.07)
        env, api, controller = build(traces={"m3.medium": trace})
        [vm] = launch_fleet(env, controller, count=1)
        assert vm.host.instance.market is Market.ON_DEMAND
        assert vm.id in controller._parked

    def test_vm_lifetime_recorded(self):
        env, api, controller = build()
        [vm] = launch_fleet(env, controller, count=1)
        assert vm.id in controller.ledger.lifetimes


class TestRevocation:
    def test_bounded_migration_to_on_demand(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        source_instance = vm.host.instance
        env.run(until=SPIKE_START + 400.0)
        assert source_instance.state is InstanceState.TERMINATED
        assert vm.state is not VMState.TERMINATED
        assert vm.host.instance.market is Market.ON_DEMAND
        assert vm.backup_assignment is None  # released on the od side
        [migration] = [m for m in controller.ledger.migrations
                       if m.cause == "revocation"]
        assert migration.mechanism == "bounded-lazy"
        # The ~23 s control-plane downtime window (plus commit+skeleton).
        assert 12.0 < migration.downtime_s < 40.0
        assert migration.state_safe

    def test_revocation_event_recorded_with_storm_size(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        launch_fleet(env, controller, count=3)
        env.run(until=SPIKE_START + 400.0)
        assert len(controller.ledger.revocations) == 1
        event = controller.ledger.revocations[0]
        assert event.vms_displaced == 3
        assert sum(event.backup_load.values()) == 3

    def test_vm_runs_through_spike_window(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=9 * DAY)
        assert vm.state is VMState.RUNNING
        assert controller.ledger.state_loss_events() == []

    def test_return_to_spot_after_holddown(self):
        env, api, controller = build(
            SpotCheckConfig(return_holddown_s=600.0))
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_END + 4000.0)
        assert vm.host.instance.market is Market.SPOT
        assert vm.backup_assignment is not None  # re-protected on spot
        causes = [m.cause for m in controller.ledger.migrations]
        assert "return-to-spot" in causes
        assert vm.id not in controller._parked

    def test_emptied_on_demand_host_terminated(self):
        env, api, controller = build(
            SpotCheckConfig(return_holddown_s=600.0))
        launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_END + 4000.0)
        od_pool = controller.pools.on_demand_pool("m3.medium", "us-east-1a")
        assert od_pool.host_count == 0

    def test_live_only_baseline_records_risk(self):
        env, api, controller = build(
            SpotCheckConfig(live_migration_only=True, return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        assert vm.backup_assignment is None
        env.run(until=SPIKE_START + 400.0)
        [migration] = controller.ledger.migrations
        assert migration.mechanism == "live"
        # A TPC-W guest pre-copies in ~90 s < 120 s: state survives,
        # but only just — the paper calls this impractical.
        assert migration.downtime_s < 1.0

    def test_yank_mechanism_long_downtime(self):
        from repro.virt.migration.bounded import BoundedMigrationConfig
        env, api, controller = build(SpotCheckConfig(
            mechanism=BoundedMigrationConfig.yank_baseline(),
            return_to_spot=False))
        launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_START + 600.0)
        [migration] = controller.ledger.migrations
        assert migration.mechanism == "bounded-full"
        # Ops (~23 s) plus the full unoptimized image read (~37 s); the
        # lone final commit bursts on the idle datapath, so it no
        # longer contributes the worst-case 30 s.
        assert migration.downtime_s > 50.0


class TestSparesAndStaging:
    def test_hot_spares_provisioned_and_consumed(self):
        env, api, controller = build(SpotCheckConfig(
            hot_spares=1, return_to_spot=False))
        launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_START - 1.0)
        assert controller.spares.available == 1
        env.run(until=SPIKE_START + 400.0)
        assert controller.spares.consumed == 1
        env.run(until=SPIKE_START + 4000.0)
        assert controller.spares.available == 1  # replenished

    def test_staging_used_when_no_capacity(self):
        traces = {
            "m3.medium": spiky_trace("m3.medium", 0.07),
            "m3.large": quiet_trace("m3.large", 0.14),
        }
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="2P-ML", use_staging=True,
                            return_to_spot=False),
            traces, on_demand_capacity=0)
        vms = launch_fleet(env, controller, count=2)
        env.run(until=SPIKE_START + 600.0)
        # The medium-pool VM was displaced into the large pool's spare
        # slot (the large host has 2 slots, one VM).
        medium_vm = [vm for vm in vms
                     if vm.host.instance.market is Market.SPOT
                     and vm.host.itype.name == "m3.large"]
        assert len(medium_vm) >= 1
        assert controller.spares.staged >= 1


class TestProactive:
    def test_proactive_drain_inside_band(self):
        # Bid 3x on-demand; the spike reaches ~1.43x — inside the band,
        # so no revocation occurs and the pool drains proactively.
        trace = spiky_trace("m3.medium", 0.07, spike=1.43)
        env, api, controller = build(SpotCheckConfig(
            bid_policy="multiple", bid_multiple=3.0,
            proactive_migration=True, return_to_spot=False),
            traces={"m3.medium": trace})
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_START + 2000.0)
        assert controller.ledger.migration_count("proactive") == 1
        assert controller.ledger.migration_count("revocation") == 0
        assert vm.host.instance.market is Market.ON_DEMAND
        assert len(controller.ledger.revocations) == 0


class TestRelinquish:
    def test_relinquish_frees_everything(self):
        env, api, controller = build()
        [vm] = launch_fleet(env, controller, count=1)
        host_instance = vm.host.instance
        env.run(until=env.process(iter_relinquish(controller, vm)))
        assert vm.state is VMState.TERMINATED
        assert vm.backup_assignment is None
        assert host_instance.state is InstanceState.TERMINATED
        assert vm.id not in [v.id for v in controller.all_vms()]

    def test_relinquish_keeps_shared_host(self):
        traces = {"m3.medium": quiet_trace("m3.medium", 0.07),
                  "m3.large": quiet_trace("m3.large", 0.14)}
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="2P-ML"), traces)
        vms = launch_fleet(env, controller, count=4)
        large_vms = [vm for vm in vms if vm.host.itype.name == "m3.large"]
        shared_host = large_vms[0].host
        env.run(until=env.process(
            iter_relinquish(controller, large_vms[0])))
        assert shared_host.instance.is_running
        assert len(shared_host.vms) == 1


def iter_relinquish(controller, vm):
    result = yield controller.relinquish(vm)
    return result


class TestFinalize:
    def test_backup_costs_added(self):
        env, api, controller = build()
        launch_fleet(env, controller, count=1)
        env.run(until=5 * DAY)
        controller.finalize()
        labels = [label for label, _cost in controller.ledger.extra_costs]
        assert any(label.startswith("backup:") for label in labels)

    def test_finalize_idempotent(self):
        env, api, controller = build()
        launch_fleet(env, controller, count=1)
        env.run(until=DAY)
        controller.finalize()
        count = len(controller.ledger.extra_costs)
        controller.finalize()
        assert len(controller.ledger.extra_costs) == count

    def test_summary_structure(self):
        env, api, controller = build()
        launch_fleet(env, controller, count=2)
        env.run(until=2 * DAY)
        controller.finalize()
        summary = controller.summary(total_vms=2)
        # A 2-VM fleet amortizes the $0.28 backup server poorly
        # ($0.14/VM-hr); the paper's $0.015 needs the 40-VM fleets the
        # benches use.  Here we only check the accounting adds up.
        breakdown = summary["cost_breakdown"]
        assert summary["cost_per_vm_hour"] > 0.0
        assert breakdown["backup"] > 0.0
        assert summary["availability"] > 0.99
