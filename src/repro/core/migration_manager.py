"""Migration execution: the timelines behind every VM move.

Three flows, mirroring Section 3.5:

* :meth:`MigrationManager.migrate_on_revocation` — the bounded-time
  path.  On a warning the manager immediately starts acquiring a
  destination, lets the VM run (with the checkpoint ramp degrading it
  slightly) until the latest safe suspend point, commits the residual
  state, performs the EBS/ENI detach-attach dance through the cloud
  API (the ~23 s of control-plane downtime), and restores at the
  destination — fully or lazily per the configured mechanism.
* :meth:`MigrationManager.live_migrate` — the planned path (returns to
  spot, proactive moves, small-VM revocations): pre-copy rounds while
  running, a sub-second stop-and-copy, no backup server involved.
* Destination acquisition, shared by both: hot spare, free slot in the
  on-demand pool, staging slot, or a fresh on-demand instance.
"""

from repro.backup.scheduler import RESUME_OVERHEAD_S
from repro.backup.server import BackupUnavailable
from repro.cloud.errors import ApiError, CapacityError
from repro.cloud.instances import Market
from repro.faults.retry import retry_call
from repro.obs.trace import NULL_TRACER
from repro.virt.hypervisor import HostVM
from repro.virt.migration.checkpoint import CheckpointStream
from repro.virt.migration.group import GroupCheckpointScheduler
from repro.virt.migration.soa import SoaCheckpointScheduler
from repro.virt.migration.live import PreCopyMigration
from repro.virt.migration.restore import SKELETON_BYTES
from repro.virt.vm import VMState

#: Safety margin, seconds, added to the worst-case suspend-side costs
#: when scheduling the latest safe suspend point.
SUSPEND_MARGIN_S = 2.0

#: Worst-case detach-side control-plane time (Table 1 max of
#: detach_volume + detach_network_interface).
WORST_DETACH_S = 11.3 + 12.0


class MigrationError(Exception):
    """A migration could not be carried out."""


def _pool_label(key):
    return "/".join(str(part) for part in key)


class _PhaseClock:
    """Times the contiguous phases of one migration.

    Each ``begin`` closes the previous phase, so the recorded phase
    durations partition the elapsed time exactly: summing the phases
    between suspend and resume reproduces the migration's downtime.
    Every phase is mirrored as a child span of the migration's trace
    (a no-op under :data:`~repro.obs.trace.NULL_TRACER`).
    """

    def __init__(self, env, tracer, trace):
        self.env = env
        self.tracer = tracer
        self.trace = trace
        self.phases = {}
        self._name = None
        self._start = None
        self._span = None

    def begin(self, name):
        self.end()
        self._name = name
        self._start = self.env.now
        self._span = self.tracer.start_span(self.trace, name)

    def end(self):
        if self._name is None:
            return
        elapsed = self.env.now - self._start
        self.phases[self._name] = self.phases.get(self._name, 0.0) + elapsed
        self.tracer.end(self._span)
        self._name = None
        self._span = None


class MigrationManager:
    """Executes migrations on behalf of the controller."""

    def __init__(self, controller):
        self.controller = controller
        self.env = controller.env
        self.api = controller.api
        self.config = controller.config
        self.ledger = controller.ledger
        #: backup-server id -> GroupCheckpointScheduler for that
        #: server's steady-state flush cohorts (steady_checkpoint_flush).
        self._flush_schedulers = {}
        #: vm id -> the scheduler currently streaming it.
        self._flush_members = {}

    # -- steady-state flush (group scheduler) ------------------------------

    def steady_flush_join(self, vm, backup):
        """Enroll a backed-up VM's steady checkpoint stream.

        All VMs of one backup server share a scheduler; VMs with
        identical plans that enroll at the same instant share a cohort
        (one wakeup per interval for the whole group).  With
        ``soa_checkpoint_flush`` the struct-of-arrays core serves every
        plan-group from one runner instead — the heterogeneous-fleet
        path, bit-identical by contract.
        """
        if vm.id in self._flush_members:
            return
        scheduler = self._flush_schedulers.get(backup.id)
        if scheduler is None:
            core = (SoaCheckpointScheduler
                    if self.config.soa_checkpoint_flush
                    else GroupCheckpointScheduler)
            scheduler = core(
                self.env, backup.ingest,
                defer_accounting=self.config.defer_flush_accounting)
            self._flush_schedulers[backup.id] = scheduler

        def _commit(flushed, vm_id=vm.id, store=backup.store):
            # A round in flight when the VM released its backup still
            # credits the scheduler's totals, but the image is gone.
            if vm_id in store:
                store.commit(vm_id, flushed)

        scheduler.join(vm.id, vm.checkpoint_stream, on_flush=_commit)
        self._flush_members[vm.id] = scheduler

    def steady_flush_leave(self, vm_id):
        """Drop a VM from its flush cohort (in-flight rounds drain)."""
        scheduler = self._flush_members.pop(vm_id, None)
        if scheduler is not None:
            scheduler.leave(vm_id)

    def settle_steady_flush(self):
        """Finalize every flush scheduler (synchronous, see finalize)."""
        for scheduler in self._flush_schedulers.values():
            scheduler.settle_now()

    def flush_drive_stats(self):
        """Aggregated group-scheduler counters for the fleet bench."""
        totals = {"schedulers": len(self._flush_schedulers),
                  "cohorts_created": 0, "cohorts_active": 0,
                  "members": 0, "flows_issued": 0, "splits": 0}
        for scheduler in self._flush_schedulers.values():
            stats = scheduler.stats()
            for key in ("cohorts_created", "cohorts_active", "members",
                        "flows_issued", "splits"):
                totals[key] += stats[key]
        return totals

    # -- destination acquisition ------------------------------------------

    def acquire_destination(self, vm, exclude_pool=None):
        """Process: produce a running host with a free slot for ``vm``.

        Preference order: hot spare, free slot in the on-demand pool,
        staging slot in another healthy pool, fresh on-demand instance.
        Returns ``(host, kind)`` where kind is one of ``"spare"``,
        ``"pool"``, ``"staging"``, ``"fresh"``.  Raises
        :class:`MigrationError` when nothing is available.
        """
        return self.env.process(self._acquire_steps(vm, exclude_pool))

    def _acquire_steps(self, vm, exclude_pool):
        ctl = self.controller
        vm_zone = vm.volume.zone if vm.volume is not None else None
        spare = ctl.spares.take_spare(zone=vm_zone)
        if spare is not None:
            spare.hypervisor.reserve_slot()
            return spare, "spare"
        od_pool = ctl.on_demand_pool_for(vm)
        host = od_pool.host_with_free_slot()
        if host is not None:
            host.hypervisor.reserve_slot()
            return host, "pool"
        staging = ctl.spares.find_staging_slot(
            ctl.pools.all_spot_pools(), exclude_pool=exclude_pool,
            zone=vm_zone)
        if staging is not None:
            staging.hypervisor.reserve_slot()
            return staging, "staging"
        try:
            instance = yield from retry_call(
                self.env,
                lambda: self.api.run_instance(
                    vm.itype, od_pool.zone, Market.ON_DEMAND),
                self.config.retry, "start_on_demand_instance")
        except (CapacityError, ApiError):
            # The platform is out of on-demand capacity (or its control
            # plane is failing hard); fall back to any staging slot even
            # if staging is disabled by policy — state is already safe
            # on the backup server, this only bounds the downtime.
            staging = ctl.spares.find_staging_slot(
                ctl.pools.all_spot_pools(), exclude_pool=None,
                zone=vm_zone)
            if staging is None:
                raise MigrationError(
                    f"no destination available for {vm.id}")
            staging.hypervisor.reserve_slot()
            return staging, "staging"
        host = HostVM(self.env, instance, vm.itype, slots=1)
        host.hypervisor.reserve_slot()
        od_pool.add_host(host)
        return host, "fresh"

    def acquire_patiently(self, vm, exclude_pool=None):
        """Process: like :meth:`acquire_destination`, but never fails.

        Started fire-and-forget at warning time (step 1 of the
        bounded-time path), long before anything joins it — an early
        failure would crash the kernel, and the bounded path has no
        better answer than waiting anyway (the VM's state is safe on
        its backup server; a missing destination only stretches the
        downtime).  Exhausted rounds back off with the policy's
        capped exponential schedule and try again.
        """
        return self.env.process(self._acquire_patiently(vm, exclude_pool))

    def _acquire_patiently(self, vm, exclude_pool):
        round_ = 0
        while True:
            try:
                return (yield from self._acquire_steps(vm, exclude_pool))
            except (MigrationError, CapacityError, ApiError) as exc:
                round_ += 1
                self.controller._note_degraded("migration.acquire", exc)
                yield self.env.timeout(
                    self.config.retry.backoff_cap_s(round_))

    # -- bounded-time path ---------------------------------------------------

    def migrate_on_revocation(self, vm, source_host, deadline, source_pool,
                              storm=None):
        """Process: move ``vm`` off a revoked host before ``deadline``."""
        return self.env.process(self._revocation_flow(
            vm, source_host, deadline, source_pool, storm))

    def _revocation_flow(self, vm, source_host, deadline, source_pool, storm):
        cfg = self.config
        mech = cfg.mechanism
        if getattr(vm, "_migration_busy", False) or not vm.is_running:
            return None
        vm._migration_busy = True
        try:
            result = yield from self._revocation_steps(
                vm, source_host, deadline, source_pool, storm, cfg, mech)
        finally:
            vm._migration_busy = False
        return result

    def _revocation_steps(self, vm, source_host, deadline, source_pool,
                          storm, cfg, mech):
        # VMs without a usable backup image — the live-only baseline,
        # the small-VM exception, briefly staged VMs, and VMs whose
        # image is still re-seeding after a backup failure — ride the
        # warning with a live migration; state is at risk if pre-copy
        # cannot finish inside the warning.
        backup = vm.backup_assignment
        image_usable = (
            backup is not None and not getattr(backup, "failed", False)
            and vm.id in backup.store
            and backup.store.image(vm.id).is_complete)
        if cfg.live_migration_only or not image_usable:
            live_planner = PreCopyMigration(
                bandwidth_bps=cfg.live_migration_bps)
            live_plan = live_planner.plan(vm.memory)
            warning = deadline - self.env.now
            state_safe = (live_plan.converged and
                          live_plan.total_time_s <= warning)
            dest_host = yield self._live_proc(
                vm, source_host, cause="revocation",
                exclude_pool=source_pool, state_safe=state_safe)
            if dest_host is not None:
                # The VM now sits on the on-demand side; mark it parked
                # so the allocation dynamics bring it back to spot when
                # the price recovers.
                self.controller.note_parked(vm, source_pool, "pool")
            return dest_host

        warning = deadline - self.env.now
        mechanism = f"bounded-{mech.restore_kind}"
        obs = self.env.obs
        tracer = obs.tracer if obs is not None else NULL_TRACER
        trace = tracer.start_trace(
            "migration", vm=vm.id, cause="revocation", mechanism=mechanism,
            source=_pool_label(source_pool.key), warning_s=warning)
        clock = _PhaseClock(self.env, tracer, trace)

        # 1. Start destination acquisition immediately (patient form:
        #    it runs unjoined until step 6, so it must absorb failures
        #    rather than die and crash the kernel).
        acquire_span = tracer.start_span(trace, "dest-acquire")
        dest_proc = self.acquire_patiently(vm, exclude_pool=source_pool)

        # 2. Plan the suspend point: as late as safety allows.
        stream = vm.checkpoint_stream
        commit_s = stream.final_commit_downtime_s(ramped=mech.warning_ramp)
        suspend_at = deadline - (commit_s + WORST_DETACH_S + SUSPEND_MARGIN_S)
        suspend_at = max(suspend_at, self.env.now)

        # 3. Ramp window: degraded while checkpoints tighten.
        ramp_s = stream.warning_degradation_s(
            warning, ramped=mech.warning_ramp)
        run_until_ramp = max(suspend_at - ramp_s - self.env.now, 0.0)
        if run_until_ramp > 0:
            clock.begin("warning-run")
            yield self.env.timeout(run_until_ramp)
        degraded_s = 0.0
        if ramp_s > 0:
            clock.begin("checkpoint-ramp")
            vm.set_state(VMState.MIGRATING)
            yield self.env.timeout(max(suspend_at - self.env.now, 0.0))
            degraded_s += ramp_s
        clock.end()

        # 4. Suspend and commit the residual dirty state as a real
        #    write flow on the backup server's shared datapath.  Alone,
        #    the commit bursts far past the guaranteed rate (faster
        #    than the worst-case estimate the suspend point budgeted
        #    for); in a full storm the fair share degenerates to
        #    exactly the provisioned ``commit_bandwidth_bps``.  From
        #    here to the end of the restore, every phase is downtime;
        #    the phase clock partitions that window, so the per-phase
        #    durations sum exactly to the recorded downtime (Table 1
        #    per migration).
        vm.set_state(VMState.SUSPENDED)
        suspend_started = self.env.now
        clock.begin("final-commit")
        state_safe = stream.commit_bound_feasible()
        if mech.warning_ramp:
            residual = vm.memory.dirty_bytes(
                stream.feasible_ramp_interval_s())
        else:
            residual = vm.memory.dirty_bytes(stream.interval_s())
        if residual > 0:
            try:
                yield backup.commit_flow(residual)
            except BackupUnavailable:
                # The backup server died between the warning and the
                # suspend: the residual has nowhere to go.
                state_safe = False
        if self.env.now > deadline:
            state_safe = False

        # 5. Detach the volume and interface from the doomed host.
        #    These EC2 operations "can only detach a VM's EBS volumes
        #    and its network interface after the VM is paused" and run
        #    sequentially — together with the reattach below they are
        #    the paper's ~22.65 s control-plane downtime.
        yield from self._detach_for_migration(vm, source_host, deadline,
                                              clock)
        source_host.hypervisor.evict(vm)

        # 6. Join destination acquisition (usually already complete).
        clock.begin("dest-wait")
        dest_host, dest_kind = yield dest_proc
        tracer.end(acquire_span)

        # 7. Reattach at the destination and move the private IP.  The
        #    VM's state is safe on the backup server, so persistence
        #    beats failure here: the attaches retry until they land.
        if vm.volume is not None:
            clock.begin("ebs-attach")
            yield from self._insist(
                lambda: self.api.attach_volume(vm.volume,
                                               dest_host.instance),
                "attach_volume", "revocation.attach")
        if vm.eni is not None:
            clock.begin("vpc-attach")
            yield from self._insist(
                lambda: self.api.attach_interface(vm.eni, dest_host.instance),
                "attach_network_interface", "revocation.attach")

        # 8. Restore from the backup server as real read flows.  The
        #    flows share the datapath with every other storm in flight,
        #    so the concurrency a restore experiences is whatever
        #    actually overlaps it — not a per-storm snapshot.  Recorded
        #    ``concurrent`` is the peak simultaneous restores the
        #    server saw during this VM's restore window.
        backup = vm.backup_assignment
        usable = (backup is not None and not backup.failed
                  and vm.id in backup.store
                  and backup.store.image(vm.id).is_complete)
        concurrent = 1
        token = None
        clock.begin("restore")
        try:
            if usable:
                token = backup.begin_restore()
                if mech.restore_kind == "full":
                    yield backup.restore_read_flow(
                        vm.memory.total_bytes, "full",
                        mech.restore_optimized)
                else:
                    yield backup.skeleton_flow(SKELETON_BYTES)
                    yield self.env.timeout(RESUME_OVERHEAD_S)
            else:
                # The image vanished mid-migration (the backup crashed
                # after the warning-time check): resume from the
                # durable volume with memory state lost.
                state_safe = False
            clock.end()
            downtime_s = self.env.now - suspend_started
            dest_host.hypervisor.attach(vm)
            vm.host = dest_host
            if usable and mech.restore_kind == "lazy":
                clock.begin("demand-page-tail")
                vm.set_state(VMState.RESTORING)
                tail_started = self.env.now
                try:
                    yield backup.restore_read_flow(
                        vm.memory.total_bytes, "lazy",
                        mech.restore_optimized)
                except BackupUnavailable:
                    # Crashed under the demand-paging tail: the pages
                    # not yet faulted in are lost.
                    state_safe = False
                degraded_s += self.env.now - tail_started
                clock.end()
        finally:
            if token is not None:
                concurrent = max(token.peak, 1)
                backup.end_restore(token)
        vm.set_state(VMState.RUNNING)

        # 9. The VM now sits on a non-revocable server: no backup needed.
        self.controller.release_backup(vm)
        self.controller.note_parked(vm, source_pool, dest_kind)

        #: Only the phases inside the suspend window decompose the
        #: downtime; the pre-suspend and post-restore phases are
        #: degradation, reported separately.
        downtime_phases = {
            name: seconds for name, seconds in clock.phases.items()
            if name not in ("warning-run", "checkpoint-ramp",
                            "demand-page-tail")}
        self.ledger.record_migration(
            vm_id=vm.id, cause="revocation", mechanism=mechanism,
            downtime_s=downtime_s, degraded_s=degraded_s,
            source_pool=source_pool.key,
            dest_pool=("on-demand", vm.itype.name, dest_host.zone.name),
            concurrent=concurrent, state_safe=state_safe,
            phases=downtime_phases)
        tracer.end(trace)
        if obs is not None:
            self._publish_migration(
                obs, vm, cause="revocation", mechanism=mechanism,
                downtime_s=downtime_s, degraded_s=degraded_s,
                phases=downtime_phases, concurrent=concurrent,
                state_safe=state_safe)
        # A staging destination is itself revocable and may have been
        # warned while we restored.
        self.chase_if_doomed(vm, dest_host)
        return dest_host

    def _detach_for_migration(self, vm, source_host, deadline, clock):
        """Detach the volume and ENI before ``deadline`` — or let the
        platform do it.

        Retries are deadline-aware: a backoff that would overrun the
        remaining warning window is not taken.  When retries are
        exhausted the flow degrades by waiting for the platform's
        forced termination, whose force-detach releases both
        attachments for free — the VM's state is already committed to
        the backup server, so only downtime (never state) is at stake.
        """
        policy = self.config.retry
        try:
            if vm.volume is not None:
                clock.begin("ebs-detach")
                yield from retry_call(
                    self.env, lambda: self.api.detach_volume(vm.volume),
                    policy, "detach_volume", deadline=deadline)
            if vm.eni is not None:
                clock.begin("vpc-detach")
                yield from retry_call(
                    self.env, lambda: self.api.detach_interface(vm.eni),
                    policy, "detach_network_interface", deadline=deadline)
        except ApiError as exc:
            self.controller._note_degraded("revocation.detach", exc)
            clock.begin("forced-detach-wait")
            yield source_host.instance.terminated

    def _insist(self, factory, operation, path):
        """Retry ``factory`` until it succeeds (post-suspend phases).

        Each exhausted policy round is recorded as one degradation and
        followed by a full ``max_delay_s`` hold-down before the next
        round.
        """
        while True:
            try:
                return (yield from retry_call(
                    self.env, factory, self.config.retry, operation))
            except ApiError as exc:
                self.controller._note_degraded(path, exc)
                yield self.env.timeout(self.config.retry.max_delay_s)

    def _publish_migration(self, obs, vm, cause, mechanism, downtime_s,
                           degraded_s, phases, concurrent, state_safe):
        """Emit the completion event and the migration metrics."""
        obs.emit("migration.completed", vm=vm.id, cause=cause,
                 mechanism=mechanism, downtime_s=downtime_s,
                 degraded_s=degraded_s, concurrent=concurrent,
                 state_safe=state_safe)
        obs.metrics.counter(
            "migrations_total", cause=cause, mechanism=mechanism).inc()
        obs.metrics.histogram(
            "migration_downtime_seconds", mechanism=mechanism).observe(
                downtime_s)
        obs.metrics.histogram(
            "migration_degraded_seconds", mechanism=mechanism).observe(
                degraded_s)
        for phase, seconds in phases.items():
            obs.metrics.histogram(
                "migration_phase_seconds", phase=phase).observe(seconds)
        if not state_safe:
            obs.metrics.counter("migration_state_risk_total",
                                mechanism=mechanism).inc()

    # -- live path -------------------------------------------------------

    def live_migrate(self, vm, source_host, cause, dest_host=None,
                     exclude_pool=None, state_safe=True):
        """Process: pre-copy ``vm`` to a destination while it runs.

        Used for returns to spot, proactive moves, and the small-VM /
        live-only revocation paths.  If ``dest_host`` is None a
        destination is acquired (on-demand side).
        """
        def _locked():
            if getattr(vm, "_migration_busy", False) or not vm.is_running:
                return None
            vm._migration_busy = True
            try:
                result = yield from self._live_flow(
                    vm, source_host, cause, dest_host, exclude_pool,
                    state_safe)
            finally:
                vm._migration_busy = False
            if result is not None and not result.instance.is_spot:
                self.chase_if_doomed(vm, result)
            return result

        return self.env.process(_locked())

    def chase_if_doomed(self, vm, landed_host):
        """Chain another migration if the VM landed on a warned host.

        A migration in flight cannot join the storm of its *destination*
        (the watcher snapshot predates the arrival), so an arriving VM
        must check the host's fate itself.  For spot landings the
        *caller* invokes this — after re-assigning the backup server —
        so a chained revocation can use the bounded-time path.
        """
        instance = landed_host.instance
        if not instance.is_spot or vm.host is not landed_host:
            return
        if instance.state.value != "marked-for-termination":
            return
        pool = self.controller.pools.pool_of_host(landed_host)
        deadline = instance.termination_notice.value
        if pool is not None and deadline > self.env.now:
            self.migrate_on_revocation(vm, landed_host, deadline, pool)

    def _live_proc(self, vm, source_host, cause, dest_host=None,
                   exclude_pool=None, state_safe=True):
        """Live flow as a process, without taking the busy lock (used
        from flows that already hold it)."""
        return self.env.process(self._live_flow(
            vm, source_host, cause, dest_host, exclude_pool, state_safe))

    def _live_flow(self, vm, source_host, cause, dest_host, exclude_pool,
                   state_safe):
        cfg = self.config
        planner = PreCopyMigration(bandwidth_bps=cfg.live_migration_bps)
        plan = planner.plan(vm.memory)
        obs = self.env.obs
        tracer = obs.tracer if obs is not None else NULL_TRACER
        trace = tracer.start_trace(
            "migration", vm=vm.id, cause=cause, mechanism="live",
            rounds=plan.rounds, converged=plan.converged)

        if dest_host is None:
            acquire_span = tracer.start_span(trace, "dest-acquire")
            try:
                dest_host, _kind = yield self.acquire_destination(
                    vm, exclude_pool=exclude_pool)
            except (MigrationError, CapacityError, ApiError) as exc:
                # No destination: the move is abandoned and the VM
                # stays put (callers treat None as "did not move"; a
                # doomed source then rides the forced termination).
                self.controller._note_degraded("live.acquire", exc)
                tracer.end(acquire_span)
                tracer.end(trace)
                return None
            tracer.end(acquire_span)

        # Pre-copy rounds: the VM runs, mildly degraded.
        precopy_span = tracer.start_span(trace, "pre-copy")
        vm.set_state(VMState.MIGRATING)
        yield self.env.timeout(plan.total_time_s - plan.downtime_s)
        tracer.end(precopy_span)

        # Stop-and-copy: the only downtime of a planned live migration.
        # (For planned moves the volume/interface handoff is overlapped
        # with the pre-copy rounds; revocation-path migrations pay it
        # in full — see _revocation_flow.)
        stop_span = tracer.start_span(trace, "stop-and-copy")
        vm.set_state(VMState.SUSPENDED)
        yield self.env.timeout(plan.downtime_s)
        if not dest_host.instance.is_running:
            # The destination died during the pre-copy (e.g. a staging
            # host got revoked): restart the stop-and-copy against a
            # fresh destination; the source still holds the state.
            try:
                dest_host, _kind = yield self.acquire_destination(
                    vm, exclude_pool=exclude_pool)
            except (MigrationError, CapacityError, ApiError) as exc:
                self.controller._note_degraded("live.acquire", exc)
                vm.set_state(VMState.RUNNING)
                tracer.end(stop_span)
                tracer.end(trace)
                return None
            yield self.env.timeout(plan.downtime_s)
        tracer.end(stop_span)
        source_host.hypervisor.evict(vm)
        dest_host.hypervisor.attach(vm)
        self._relocate_attachments(vm, dest_host.instance)
        vm.host = dest_host
        vm.set_state(VMState.RUNNING)

        source_pool = self.controller.pools.pool_of_host(source_host)
        dest_pool = self.controller.pools.pool_of_host(dest_host)
        phases = {"stop-and-copy": plan.downtime_s}
        self.ledger.record_migration(
            vm_id=vm.id, cause=cause, mechanism="live",
            downtime_s=plan.downtime_s,
            degraded_s=plan.total_time_s - plan.downtime_s,
            source_pool=source_pool.key if source_pool else ("?",),
            dest_pool=dest_pool.key if dest_pool else ("?",),
            concurrent=1, state_safe=state_safe, phases=phases)
        tracer.end(trace)
        if obs is not None:
            self._publish_migration(
                obs, vm, cause=cause, mechanism="live",
                downtime_s=plan.downtime_s,
                degraded_s=plan.total_time_s - plan.downtime_s,
                phases=phases, concurrent=1, state_safe=state_safe)
        return dest_host

    def _relocate_attachments(self, vm, dest_instance):
        """Move the VM's volume and interface to the destination host.

        For *planned* live migrations the control-plane detach/attach
        is overlapped with the pre-copy rounds, so no extra latency is
        charged here; only the resource bookkeeping moves.  The
        revocation path, where the ops sit squarely inside the
        downtime window, performs them through the latency-charging
        API instead (see ``_revocation_steps``).
        """
        volume = vm.volume
        if volume is not None:
            if volume.attached_to is not None or \
                    volume.state.value in ("attaching", "detaching", "in-use"):
                volume._force_detach()
            volume._begin_attach(dest_instance)
            volume._finish_attach()
        eni = vm.eni
        if eni is not None:
            if eni.is_attached:
                eni._detach()
            eni._attach(dest_instance)

    # -- estimates used by policies ----------------------------------------

    def live_fits_warning(self, memory, warning_s):
        """Whether a live migration is trustworthy within a warning."""
        planner = PreCopyMigration(
            bandwidth_bps=self.config.live_migration_bps)
        plan = planner.plan(memory)
        return (plan.converged and
                plan.total_time_s <= warning_s * self.config.live_safety_factor)

    def skeleton_bytes(self):
        return SKELETON_BYTES

    def checkpoint_stream_for(self, vm):
        return CheckpointStream(vm.memory, self.config.mechanism.checkpoint)
