"""Deterministic discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: an event heap
ordered by (time, priority, sequence number), generator-based processes
that ``yield`` events, and named seeded random-number streams so every
experiment is exactly reproducible.
"""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Environment
from repro.sim.process import Process
from repro.sim.resources import (Container, FairShareResource, Resource,
                                 fair_share_rates)
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "FairShareResource",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Timeout",
    "fair_share_rates",
]
