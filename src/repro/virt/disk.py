"""Local-disk state and asynchronous mirroring (the DRBD option).

The prototype "requires the VM to use one (or more) network-attached
EBS volumes ... and does not support backing up local storage.
However, since the speed of the local disk and a backup server's disk
are similar in magnitude, EC2's warning period permits asynchronous
mirroring of local disk state to the backup server, e.g., using DRBD,
without significant performance degradation." (Section 5.)

This module models that alternative: a VM with instance-local storage
whose writes are mirrored asynchronously to the backup server.  The
mirror maintains a bounded backlog of unshipped writes; at a
revocation the backlog must be synced before the host dies, replacing
the EBS detach/attach steps of the migration timeline.

The trade against network volumes:

* local disk avoids the ~15.4 s of EBS detach+attach control-plane
  downtime per migration (Table 1), but
* adds a final disk sync to the commit pause, consumes backup-path
  bandwidth continuously, and is simply infeasible for write rates
  above the mirror bandwidth.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """A VM's instance-local disk and its write behaviour.

    Attributes
    ----------
    total_bytes:
        Disk size (only the written working set matters for mirroring).
    write_rate_bps:
        Sustained bytes/s the workload writes to local disk.
    burst_factor:
        Peak-to-mean ratio of the write rate; the mirror's steady
        backlog is sized to ride out bursts.
    """

    total_bytes: int
    write_rate_bps: float
    burst_factor: float = 3.0

    def __post_init__(self):
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        if self.write_rate_bps < 0:
            raise ValueError("write_rate_bps must be non-negative")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be at least 1")


@dataclass(frozen=True)
class MirrorConfig:
    """Asynchronous mirroring parameters.

    Attributes
    ----------
    bandwidth_bps:
        Bytes/s the mirror stream may use toward the backup server.
    buffer_delay_s:
        How long a write may sit in the send buffer before the mirror
        ships it (larger = better batching, bigger backlog).
    """

    bandwidth_bps: float = 12e6
    buffer_delay_s: float = 2.0

    def __post_init__(self):
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.buffer_delay_s < 0:
            raise ValueError("buffer delay must be non-negative")


class LocalDiskMirror:
    """The mirroring state machine for one VM's local disk."""

    def __init__(self, disk, config=None):
        self.disk = disk
        self.config = config or MirrorConfig()

    @property
    def feasible(self):
        """Whether the mirror can keep up with the sustained writes."""
        return self.disk.write_rate_bps <= self.config.bandwidth_bps

    def steady_backlog_bytes(self):
        """Unshipped bytes at an arbitrary instant, steady state.

        The buffered window of recent writes, plus the transient burst
        excess the bandwidth cannot absorb immediately.
        """
        cfg = self.config
        buffered = self.disk.write_rate_bps * cfg.buffer_delay_s
        burst_rate = self.disk.write_rate_bps * self.disk.burst_factor
        burst_excess = max(burst_rate - cfg.bandwidth_bps, 0.0) \
            * cfg.buffer_delay_s
        return buffered + burst_excess

    def final_sync_s(self):
        """Time to ship the backlog when a revocation warning arrives.

        Writes continue during the sync, so the drain rate is the
        mirror bandwidth minus the sustained write rate; an infeasible
        mirror never drains (returns ``inf``).
        """
        if not self.feasible:
            return float("inf")
        drain = self.config.bandwidth_bps - self.disk.write_rate_bps
        if drain <= 0:
            # Exactly saturated: pause writes and push the backlog.
            return self.steady_backlog_bytes() / self.config.bandwidth_bps
        return self.steady_backlog_bytes() / drain

    def mirror_stream_bps(self):
        """Bandwidth the mirror consumes on the backup path."""
        return min(self.disk.write_rate_bps, self.config.bandwidth_bps)

    def fits_warning(self, warning_s, margin_s=5.0):
        """Whether the final sync reliably completes in the warning."""
        return self.final_sync_s() + margin_s <= warning_s


def migration_downtime_comparison(memory_stream, mirror, latency_model,
                                  warning_s=120.0):
    """EBS-backed vs locally-mirrored migration downtime breakdown.

    ``memory_stream`` is the VM's
    :class:`~repro.virt.migration.checkpoint.CheckpointStream`;
    ``latency_model`` the Table 1 sampler.  Returns the two downtime
    compositions the ablation bench tabulates.
    """
    commit = memory_stream.final_commit_downtime_s(ramped=True)
    ebs_ops = latency_model.mean("detach_volume") + \
        latency_model.mean("attach_volume")
    eni_ops = latency_model.mean("attach_network_interface") + \
        latency_model.mean("detach_network_interface")
    ebs_total = commit + ebs_ops + eni_ops
    local_total = commit + mirror.final_sync_s() + eni_ops
    return {
        "memory_commit_s": commit,
        "ebs": {"ops_s": ebs_ops + eni_ops, "total_s": ebs_total},
        "local": {
            "sync_s": mirror.final_sync_s(),
            "ops_s": eni_ops,
            "total_s": local_total,
            "feasible": mirror.fits_warning(warning_s),
        },
    }
