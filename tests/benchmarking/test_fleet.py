"""The fleet-scale cell benchmark: events must not scale with VMs."""

import pytest

from repro.benchmarking.fleet import (
    measure_fleet_scaling,
    measure_sharded_fleet,
)


class TestFleetScaling:
    def test_events_flat_in_fleet_size(self):
        result = measure_fleet_scaling(small_vms=5, large_vms=200,
                                       days=0.25)
        small, large = result["small"], result["large"]
        assert small["vms"] == 5
        assert large["vms"] == 200
        # The whole homogeneous fleet forms one cohort; both cells arm
        # the same rounds, so event totals stay nearly flat.
        assert small["flush_cohorts"] == 1
        assert large["flush_cohorts"] == 1
        assert large["flush_flows"] == small["flush_flows"]
        assert result["event_ratio"] < 2.0
        assert large["events_per_vm_hour"] < small["events_per_vm_hour"]
        for cell in (small, large):
            assert cell["boot_wall_s"] > 0
            assert cell["steady_wall_s"] >= 0
            assert cell["wall_s"] == pytest.approx(
                cell["boot_wall_s"] + cell["steady_wall_s"])

    def test_spares_never_poll_on_calm_market(self):
        result = measure_fleet_scaling(small_vms=5, large_vms=40,
                                       days=0.25)
        for cell in (result["small"], result["large"]):
            assert cell["spare_wakes"] == 0
            assert cell["spare_polls"] == 0

    def test_cell_sizes_validated(self):
        with pytest.raises(ValueError):
            measure_fleet_scaling(small_vms=10, large_vms=10)


class TestShardedFleet:
    def test_sharded_bench_is_bit_identical(self):
        result = measure_sharded_fleet(vms=40, days=0.25, markets=4,
                                       shard_counts=(1, 2))
        assert result["bit_identical"] is True
        assert result["single"]["shards"] == 1
        assert result["sharded"]["shards"] == 2
        assert result["single"]["events"] == result["sharded"]["events"]
        assert result["speedup"] > 0
        assert len(result["digest"]) == 64

    def test_shard_counts_validated(self):
        with pytest.raises(ValueError, match="single-process"):
            measure_sharded_fleet(vms=40, days=0.25, shard_counts=(2, 4))
        with pytest.raises(ValueError, match="one VM per market"):
            measure_sharded_fleet(vms=2, days=0.25, markets=4)
