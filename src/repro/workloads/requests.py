"""Request-level view: what SpotCheck's disruptions do to end users.

The paper argues SpotCheck makes interactive applications viable on
spot servers.  This module makes that claim measurable at the request
level: it converts a nested VM's state history into a timeline of
workload conditions, overlays an open-loop request stream, and reports
the latency distribution and error rate a client population would see.

Responses within one condition are modelled as lognormal around the
workload's mean for that condition (a standard fit for web latencies);
requests arriving during downtime windows fail (or time out) and count
toward the error rate, not the latency distribution.
"""

from dataclasses import dataclass

import numpy as np

from repro.virt.vm import VMState
from repro.workloads.base import Conditions


@dataclass(frozen=True)
class RequestStats:
    """The client-visible outcome of a period of operation."""

    total_requests: float
    failed_requests: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: Fraction of *successful* requests slower than the SLA threshold.
    sla_threshold_ms: float
    sla_violation_rate: float

    @property
    def error_rate(self):
        if self.total_requests == 0:
            return 0.0
        return self.failed_requests / self.total_requests


@dataclass(frozen=True)
class ConditionSegment:
    """A stretch of time under one set of workload conditions."""

    start: float
    end: float
    conditions: Conditions
    down: bool = False

    @property
    def duration(self):
        return self.end - self.start


def conditions_for_state(state, checkpointing_while_running=True):
    """The workload :class:`Conditions` a VM state imposes.

    Returns ``None`` for down states (SUSPENDED, PROVISIONING,
    TERMINATED): requests arriving then fail rather than slow down.
    MIGRATING always maps to degraded (checkpointing) conditions —
    pre-copy competes with the guest for I/O regardless of whether
    steady-state checkpointing is being modelled.
    """
    if state in (VMState.SUSPENDED, VMState.PROVISIONING,
                 VMState.TERMINATED):
        return None
    if state is VMState.RESTORING:
        return Conditions(restoring=True, restore_concurrency=1)
    if state is VMState.MIGRATING:
        return Conditions(checkpointing=True)
    return Conditions(checkpointing=checkpointing_while_running)


def timeline_from_vm(vm, start, end, checkpointing_while_running=True):
    """Derive condition segments from a nested VM's state log.

    RUNNING maps to normal (checkpointing) operation, MIGRATING to the
    pre-copy/ramp window (mildly degraded — modelled as checkpointing
    conditions, independent of ``checkpointing_while_running``),
    RESTORING to the demand-paging window, and SUSPENDED/PROVISIONING
    to downtime.
    """
    segments = []
    log = vm.state_log
    for index, (when, state) in enumerate(log):
        seg_end = log[index + 1][0] if index + 1 < len(log) else end
        lo, hi = max(when, start), min(seg_end, end)
        if hi <= lo:
            continue
        conditions = conditions_for_state(state, checkpointing_while_running)
        if conditions is None:
            segments.append(ConditionSegment(lo, hi, Conditions(),
                                             down=True))
        else:
            segments.append(ConditionSegment(lo, hi, conditions))
    return segments


class RequestAnalyzer:
    """Overlays an open-loop request stream on a condition timeline.

    Parameters
    ----------
    workload:
        A response-time workload (TPC-W-like: ``response_time_ms``).
    latency_cov:
        Coefficient of variation of the per-condition lognormal.
    """

    def __init__(self, workload, latency_cov=0.35):
        if latency_cov <= 0:
            raise ValueError("latency_cov must be positive")
        self.workload = workload
        self.latency_cov = latency_cov

    def _lognormal_params(self, mean_ms):
        sigma2 = np.log(1.0 + self.latency_cov ** 2)
        mu = np.log(mean_ms) - sigma2 / 2.0
        return mu, np.sqrt(sigma2)

    def analyze(self, segments, rate_rps, sla_threshold_ms=100.0,
                grid_size=4096):
        """Compute :class:`RequestStats` for ``rate_rps`` arrivals/s.

        The mixture's quantiles are computed numerically on a shared
        latency grid; exact for the per-segment lognormals up to grid
        resolution.
        """
        if rate_rps <= 0:
            raise ValueError("request rate must be positive")
        weights, means = [], []
        failed_s = 0.0
        for segment in segments:
            if segment.down:
                failed_s += segment.duration
            else:
                weights.append(segment.duration)
                means.append(self.workload.response_time_ms(
                    segment.conditions))
        total_requests = rate_rps * (sum(weights) + failed_s)
        failed_requests = rate_rps * failed_s
        if not weights:
            return RequestStats(
                total_requests=total_requests,
                failed_requests=failed_requests,
                mean_ms=float("nan"), p50_ms=float("nan"),
                p95_ms=float("nan"), p99_ms=float("nan"),
                sla_threshold_ms=sla_threshold_ms,
                sla_violation_rate=0.0)

        weights = np.asarray(weights, dtype=float)
        weights /= weights.sum()
        means = np.asarray(means, dtype=float)

        from scipy.special import erf, ndtri

        # Shared latency grid sized to the mixture's actual spread:
        # each lognormal's 0.05th..99.995th percentile, so heavy tails
        # (large latency_cov) stay on the grid instead of silently
        # clamping to the top edge.
        mu_all, sigma = self._lognormal_params(means)
        low = float(np.exp(mu_all.min() + sigma * ndtri(0.0005)))
        high = float(np.exp(mu_all.max() + sigma * ndtri(0.99995)))
        grid = np.geomspace(low, high, grid_size)
        cdf = np.zeros_like(grid)
        sla_violations = 0.0
        for weight, mean in zip(weights, means):
            mu, sigma = self._lognormal_params(mean)
            z = (np.log(grid) - mu) / (sigma * np.sqrt(2.0))
            cdf += weight * 0.5 * (1.0 + erf(z))
            z_sla = (np.log(sla_threshold_ms) - mu) / (sigma * np.sqrt(2.0))
            sla_violations += weight * (1.0 - 0.5 * (1.0 + erf(z_sla)))

        def quantile(q):
            if q > cdf[-1]:
                raise ValueError(
                    f"latency grid covers only the {cdf[-1]:.6f} "
                    f"quantile; cannot report q={q}")
            index = int(np.searchsorted(cdf, q))
            return float(grid[min(index, grid_size - 1)])

        return RequestStats(
            total_requests=total_requests,
            failed_requests=failed_requests,
            mean_ms=float(np.dot(weights, means)),
            p50_ms=quantile(0.50),
            p95_ms=quantile(0.95),
            p99_ms=quantile(0.99),
            sla_threshold_ms=sla_threshold_ms,
            sla_violation_rate=float(sla_violations),
        )

    def analyze_vm(self, vm, start, end, rate_rps, **kwargs):
        """Timeline + analysis in one step."""
        segments = timeline_from_vm(vm, start, end)
        return self.analyze(segments, rate_rps, **kwargs)
