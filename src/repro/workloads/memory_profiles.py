"""Named memory-dirtying profiles for synthetic experiments.

Beyond the two paper benchmarks, the test suite and ablation benches
use a spread of profiles — from a nearly idle VM (live migration
converges instantly) to a write-storm VM (pre-copy cannot converge and
bounded-time migration is mandatory).
"""

from repro.virt.memory import MemoryModel

#: name -> (write_rate_pages, working_set_fraction, cold_write_fraction)
MEMORY_PROFILES = {
    "idle": (20.0, 0.02, 0.01),
    "web": (800.0, 0.20, 0.02),        # TPC-W-like
    "jvm": (1100.0, 0.15, 0.02),       # SPECjbb-like
    "database": (1800.0, 0.30, 0.05),
    "analytics": (4000.0, 0.50, 0.10),
    "write-storm": (20000.0, 0.80, 0.15),
}


def profile_for(name, guest_bytes):
    """Build a :class:`MemoryModel` from a named profile."""
    try:
        rate, wsf, cold = MEMORY_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; choose from "
            f"{sorted(MEMORY_PROFILES)}") from None
    return MemoryModel(
        total_bytes=guest_bytes,
        write_rate_pages=rate,
        working_set_fraction=wsf,
        cold_write_fraction=cold,
    )
