#!/usr/bin/env python
"""Quickstart: rent an always-available server from SpotCheck.

Builds a small EC2-like cloud with one synthetic spot market, starts a
SpotCheck deployment on top of it, requests a nested VM, and fast-
forwards through two weeks of market turbulence — including a price
spike that revokes the underlying spot server.  SpotCheck masks the
revocation with a bounded-time migration; the customer's server stays
up, keeps its IP, and returns to cheap spot capacity once the spike
abates.

Run:  python examples/quickstart.py
"""

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core import SpotCheckConfig, SpotCheckController
from repro.sim import Environment
from repro.traces.archive import TraceArchive
from repro.traces.calibration import M3_MARKET_PARAMS
from repro.traces.generator import TraceGenerator
from repro.workloads import TpcwWorkload

DAYS = 14


def main():
    env = Environment(seed=42)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG)

    # Two weeks of synthetic m3.medium spot prices (volatility raised
    # so the quickstart reliably shows a revocation).
    from dataclasses import replace
    params = replace(M3_MARKET_PARAMS["m3.medium"],
                     spike_rate_per_hour=0.02, spike_duration_mean_s=1800.0)
    trace = TraceGenerator(seed=42).generate_market(
        "m3.medium", zone.name, params, duration_s=DAYS * 24 * 3600.0)
    archive = TraceArchive([trace])

    controller = SpotCheckController(env, api, SpotCheckConfig())
    controller.install_pools(archive, zone)

    def scenario():
        customer = controller.start_customer("quickstart")
        vm = yield controller.request_server(
            customer, workload=TpcwWorkload())
        print(f"[t={env.now:8.0f}s] server up: {vm.id} at {vm.private_ip} "
              f"on {vm.host.instance.market.value} host "
              f"{vm.host.instance.id}")
        return vm

    vm = env.run(until=env.process(scenario()))
    env.run(until=DAYS * 24 * 3600.0)
    controller.finalize()

    print(f"\nAfter {DAYS} days of market turbulence:")
    print(f"  server state ........ {vm.state.value} "
          f"(IP still {vm.private_ip})")
    for migration in controller.ledger.migrations:
        print(f"  t={migration.when:8.0f}s  {migration.cause:15s} "
              f"{migration.mechanism:13s} downtime {migration.downtime_s:6.1f}s"
              f"  degraded {migration.degraded_s:6.1f}s")

    summary = controller.summary(total_vms=1)
    on_demand = M3_CATALOG.get("m3.medium").on_demand_price
    breakdown = summary["cost_breakdown"]
    print(f"\n  availability ........ {100 * summary['availability']:.4f}%")
    print(f"  cost ................ ${summary['cost_per_vm_hour']:.4f}/hr "
          f"(on-demand: ${on_demand}/hr)")
    print(f"    spot ${breakdown['spot']:.2f}  on-demand "
          f"${breakdown['on-demand']:.2f}  backup ${breakdown['backup']:.2f}")
    print("    (a single VM pays for a whole backup server; SpotCheck "
          "amortizes one across 40 VMs\n     — see "
          "examples/policy_portfolio.py for fleet-scale economics)")
    print(f"  state-loss events ... {summary['state_loss_events']}")
    assert summary["state_loss_events"] == 0


if __name__ == "__main__":
    main()
