"""Sharded multi-process fleet cell.

SpotCheck's derivative cloud is naturally partitioned: each
(type, zone) spot market is an independent price trace with its own
pools, bids, group-checkpoint cohorts, and spare replenishment.  This
subsystem exploits that partition to scale one fleet cell past the
single-process ceiling — each :class:`MarketShard` process owns the
full controller stack for a subset of markets, and a coordinator
(:class:`ShardedCell`) owns the customers, the portfolio split, and
cross-market migration decisions.

Shards exchange typed messages (see :mod:`repro.core.shard.messages`)
over a deterministic mailbox layer (:mod:`repro.core.shard.mailbox`):
provision/park/migrate requests flow coordinator -> shard; revocation
warnings, price crossings, storm reports, and SLA segments flow back.
Per-market seeded RNG streams plus the mailbox's logical-clock merge
rule make a sharded run bit-identical to the single-process run at any
shard count — ``ShardedCell.run(shards=4)`` digests equal
``run(shards=1)``.
"""

from repro.core.shard.coordinator import (
    FleetResult,
    ShardedCell,
    ShardWorkerError,
    apportion,
)
from repro.core.shard.mailbox import Mailbox, Outbox, merge_messages
from repro.core.shard.market import (
    MarketShard,
    MarketSimulation,
    MarketSpec,
    ShardConfig,
    fleet_backup_spec,
    steady_rate_bps,
)
from repro.core.shard.messages import (
    ApplyCommand,
    FinalizeCommand,
    MigrateAck,
    MigrateRequest,
    ParkRequest,
    PriceCrossing,
    ProvisionRequest,
    RevocationWarning,
    RunCommand,
    ShardReport,
    SlaSegment,
    Stamp,
    StopCommand,
    StormReport,
)

__all__ = [
    "ApplyCommand",
    "FinalizeCommand",
    "FleetResult",
    "Mailbox",
    "MarketShard",
    "MarketSimulation",
    "MarketSpec",
    "MigrateAck",
    "MigrateRequest",
    "Outbox",
    "ParkRequest",
    "PriceCrossing",
    "ProvisionRequest",
    "RevocationWarning",
    "RunCommand",
    "ShardConfig",
    "ShardReport",
    "ShardWorkerError",
    "ShardedCell",
    "SlaSegment",
    "Stamp",
    "StopCommand",
    "StormReport",
    "apportion",
    "fleet_backup_spec",
    "merge_messages",
    "steady_rate_bps",
]
