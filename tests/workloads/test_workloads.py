"""Tests for the TPC-W and SPECjbb workload models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.virt.memory import MemoryModel
from repro.workloads import (
    Conditions,
    MEMORY_PROFILES,
    SpecJbbWorkload,
    TpcwWorkload,
    profile_for,
)

GiB = 1024 ** 3

conditions_strategy = st.builds(
    Conditions,
    checkpointing=st.booleans(),
    backup_overload=st.floats(min_value=0.0, max_value=1.0),
    restoring=st.booleans(),
    restore_concurrency=st.integers(min_value=0, max_value=50),
)


class TestConditions:
    def test_validation(self):
        with pytest.raises(ValueError):
            Conditions(backup_overload=1.5)
        with pytest.raises(ValueError):
            Conditions(restore_concurrency=-1)


class TestTpcw:
    def test_baseline_is_29ms(self):
        # Figure 9's zero column.
        assert TpcwWorkload().response_time_ms(Conditions()) == 29.0

    def test_checkpointing_costs_15_percent(self):
        # Figure 7: "TPC-W experiences a 15% increase in response time".
        response = TpcwWorkload().response_time_ms(
            Conditions(checkpointing=True))
        assert response == pytest.approx(29.0 * 1.15)

    def test_restore_doubles_response(self):
        # Figure 9: 29 ms -> ~60 ms during a lazy restore.
        response = TpcwWorkload().response_time_ms(
            Conditions(restoring=True, restore_concurrency=1))
        assert response == pytest.approx(60.0, abs=1.0)

    def test_restore_flat_in_concurrency(self):
        # Figure 9: "additional concurrent restorations do not
        # significantly degrade performance".
        workload = TpcwWorkload()
        one = workload.response_time_ms(
            Conditions(restoring=True, restore_concurrency=1))
        ten = workload.response_time_ms(
            Conditions(restoring=True, restore_concurrency=10))
        assert ten < one * 1.10

    def test_overload_pushes_past_30_percent(self):
        # Figure 7 at 50 VMs: roughly +30%.
        response = TpcwWorkload().response_time_ms(
            Conditions(checkpointing=True, backup_overload=0.24))
        assert response == pytest.approx(29.0 * 1.30, rel=0.05)

    @given(conditions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_never_faster_than_baseline(self, conditions):
        workload = TpcwWorkload()
        assert workload.response_time_ms(conditions) >= \
            workload.baseline_response_ms - 1e-9

    @given(conditions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_degradation_consistent_with_response(self, conditions):
        workload = TpcwWorkload()
        degradation = workload.degradation_fraction(conditions)
        assert degradation >= -1e-9
        expected = workload.baseline_response_ms * (1 + degradation)
        assert workload.response_time_ms(conditions) == \
            pytest.approx(expected)


class TestSpecJbb:
    def test_baseline_throughput(self):
        assert SpecJbbWorkload().throughput_bops(Conditions()) == 10500.0

    def test_checkpointing_alone_free(self):
        # Figure 7: "SpecJBB experiences no noticeable performance
        # degradation during normal operation".
        assert SpecJbbWorkload().throughput_bops(
            Conditions(checkpointing=True)) == 10500.0

    def test_overload_drops_throughput_30_percent(self):
        throughput = SpecJbbWorkload().throughput_bops(
            Conditions(checkpointing=True, backup_overload=0.37))
        assert throughput == pytest.approx(10500 * 0.70, rel=0.05)

    def test_restore_halves_throughput(self):
        throughput = SpecJbbWorkload().throughput_bops(
            Conditions(restoring=True, restore_concurrency=1))
        assert throughput == pytest.approx(10500 * 0.55)

    @given(conditions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_throughput_never_negative_or_above_baseline(self, conditions):
        workload = SpecJbbWorkload()
        throughput = workload.throughput_bops(conditions)
        assert 0.0 <= throughput <= workload.baseline_throughput_bops

    def test_more_memory_intensive_than_tpcw(self):
        # Paper: SPECjbb "is generally more memory-intensive than TPC-W".
        assert SpecJbbWorkload.write_rate_pages > TpcwWorkload.write_rate_pages


ALL_CONDITIONS = [
    pytest.param(Conditions(checkpointing=ckpt, backup_overload=load,
                            restoring=rest,
                            restore_concurrency=1 if rest else 0),
                 id=f"ckpt={ckpt}-load={load}-restore={rest}")
    for ckpt in (False, True)
    for load in (0.0, 0.3)
    for rest in (False, True)
]


class TestConditionMatrix:
    """Every Conditions combination, both workloads, exhaustively.

    The hypothesis tests above sample this space; the traffic engine
    leans on it for every flush, so the full 2x2x2 grid is pinned here
    deterministically.
    """

    @pytest.mark.parametrize("conditions", ALL_CONDITIONS)
    def test_tpcw_response_well_formed(self, conditions):
        workload = TpcwWorkload()
        response = workload.response_time_ms(conditions)
        assert response >= workload.baseline_response_ms
        # Any disturbance must cost something; none may speed it up.
        if conditions.restoring:
            assert response >= 55.0
        elif conditions.checkpointing and conditions.backup_overload:
            assert response > workload.response_time_ms(
                Conditions(checkpointing=True))

    @pytest.mark.parametrize("conditions", ALL_CONDITIONS)
    def test_specjbb_throughput_well_formed(self, conditions):
        workload = SpecJbbWorkload()
        throughput = workload.throughput_bops(conditions)
        assert 0.0 < throughput <= workload.baseline_throughput_bops
        if conditions.restoring:
            assert throughput <= 0.6 * workload.baseline_throughput_bops

    def test_specjbb_has_no_response_time(self):
        # The traffic engine falls back to a TPC-W latency model for
        # throughput-only workloads; this assumption is what makes
        # that hasattr() gate load-bearing.
        assert not hasattr(SpecJbbWorkload(), "response_time_ms")


class TestMemoryProfiles:
    def test_profiles_build_models(self):
        for name in MEMORY_PROFILES:
            model = profile_for(name, GiB)
            assert isinstance(model, MemoryModel)
            assert model.total_bytes == GiB

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            profile_for("cryptominer", GiB)

    def test_profiles_span_convergence_spectrum(self):
        # 'idle' must live-migrate trivially; 'write-storm' must not.
        from repro.virt.migration.live import PreCopyMigration
        planner = PreCopyMigration(bandwidth_bps=22e6)
        assert planner.fits_within(profile_for("idle", GiB), 120.0)
        assert not planner.fits_within(profile_for("write-storm", GiB), 120.0)

    def test_workload_memory_models_match_profiles(self):
        tpcw_model = TpcwWorkload().memory_model(GiB)
        web_profile = profile_for("web", GiB)
        assert tpcw_model.write_rate_pages == web_profile.write_rate_pages
