"""The bench harness: schema validation and a micro end-to-end run."""

import json

import pytest

from repro.benchmarking import (
    bench_filename,
    check_bench_floors,
    run_bench,
    validate_bench,
    validate_bench_file,
    write_bench,
)
from repro.benchmarking.kernel import measure_kernel


def _minimal_payload():
    return {
        "schema": "repro-bench/7",
        "label": "unit",
        "smoke": True,
        "created_unix": 1.0,
        "host": {"cpu_count": 1, "python": "3"},
        "kernel": {"events": 10, "wall_s": 0.1, "events_per_sec": 100.0,
                   "repeats": 3},
        "market": {
            "trace_points": 100, "events_eliminated": 90,
            "event_reduction": 10.0, "speedup": 5.0,
            "stepped": {"wall_s": 0.1, "wakes": 99, "delivered": 100,
                        "events_per_sec": 1000.0},
            "indexed": {"wall_s": 0.02, "wakes": 10, "delivered": 10,
                        "rearms": 0, "stale_skips": 0,
                        "events_per_sec": 5000.0},
        },
        "traffic": {
            "days": 1.0, "seed": 7,
            "low": {"users": 1000, "requests": 1e6, "wakes": 40,
                    "segments": 60, "wall_s": 0.01},
            "high": {"users": 1000000, "requests": 1e9, "wakes": 40,
                     "segments": 60, "wall_s": 0.01},
            "request_ratio": 1000.0, "wake_ratio": 1.0,
        },
        "fleet": {
            "days": 2.0, "seed": 11,
            "small": {"vms": 10, "hosts": 2, "days": 2.0,
                      "backup_shards": 1, "events": 1000,
                      "events_per_vm_hour": 2.0, "wall_s": 0.1,
                      "boot_wall_s": 0.01, "steady_wall_s": 0.09,
                      "flush_cohorts": 1, "flush_flows": 100,
                      "spare_wakes": 0, "spare_polls": 0},
            "large": {"vms": 10000, "hosts": 1250, "days": 2.0,
                      "backup_shards": 826, "events": 1100,
                      "events_per_vm_hour": 0.002, "wall_s": 0.12,
                      "boot_wall_s": 0.02, "steady_wall_s": 0.1,
                      "flush_cohorts": 1, "flush_flows": 100,
                      "spare_wakes": 0, "spare_polls": 0},
            "event_ratio": 1.1, "wall_ratio": 1.2,
        },
        "fleet_mix": {
            "classes": 8, "vms": 10000, "days": 2.0, "seed": 11,
            "homogeneous": {"vms": 10000, "days": 2.0, "classes": 1,
                            "events": 1100, "steady_wall_s": 0.1,
                            "flush_cohorts": 1, "flush_flows": 100},
            "mixed": {"vms": 10000, "days": 2.0, "classes": 8,
                      "events": 1800, "steady_wall_s": 0.2,
                      "flush_cohorts": 8, "flush_flows": 150},
            "event_ratio": 1.6, "wall_ratio": 2.0,
            "single": {"shards": 1, "wall_s": 1.0, "events": 5000},
            "sharded": {"shards": 2, "wall_s": 0.6, "events": 5000},
            "digest": "cd" * 32, "bit_identical": True,
        },
        "shard": {
            "vms": 2000, "markets": 4, "days": 2.0, "seed": 11,
            "single": {"shards": 1, "wall_s": 1.0, "events": 5000},
            "sharded": {"shards": 2, "wall_s": 0.6, "events": 5000},
            "speedup": 1.7, "digest": "ab" * 32, "bit_identical": True,
        },
        "index": {
            "days": 2.0, "seed": 11, "vms": 4,
            "baseline": {"policy": "1P-M", "points": 400, "wakes": 2,
                         "delivered": 2, "rearms": 1, "stale_skips": 0,
                         "wall_s": 0.1, "migrations": 0,
                         "delivered_fraction": 0.005},
            "portfolio": {"policy": "IT-0.125", "points": 400, "wakes": 12,
                          "delivered": 10, "rearms": 6, "stale_skips": 0,
                          "wall_s": 0.12, "migrations": 4,
                          "delivered_fraction": 0.025,
                          "crossings": 10, "rebalance_moves": 4},
            "extra_delivered": 8, "delivered_fraction": 0.025,
        },
        "cell": {"policy": "1P-M", "mechanism": "spotcheck-lazy",
                 "seed": 11, "days": 1.0, "vms": 2, "wall_s": 0.5,
                 "market_drive": {"points": 100, "wakes": 5, "delivered": 5,
                                  "rearms": 1, "stale_skips": 0,
                                  "event_reduction": 20.0}},
        "grid": {
            "cells": 4, "workers": 2,
            "serial_wall_s": 2.0, "parallel_wall_s": 1.0,
            "warm_wall_s": 0.01, "speedup": 2.0, "warm_speedup": 200.0,
            "parallel_plan": {"requested": 2, "planned": 2,
                              "reason": "parallel"},
            "cache": {"memory_hits": 0.0, "disk_hits": 0.0, "misses": 4.0,
                      "executed": 4.0, "warm_disk_hits": 4.0,
                      "warm_misses": 0.0},
        },
    }


class TestValidation:
    def test_minimal_payload_passes(self):
        assert validate_bench(_minimal_payload()) is not None

    def test_unknown_schema_rejected(self):
        payload = _minimal_payload()
        payload["schema"] = "repro-bench/999"
        with pytest.raises(ValueError, match="schema"):
            validate_bench(payload)

    @pytest.mark.parametrize("dotted", [
        "kernel.events_per_sec", "grid.speedup", "grid.serial_wall_s",
        "grid.cache.misses", "host.cpu_count", "market.trace_points",
        "market.stepped.events_per_sec", "market.indexed.events_per_sec",
        "cell.market_drive.points", "grid.parallel_plan.planned",
        "traffic.low.wakes", "traffic.high.requests", "traffic.wake_ratio",
        "fleet.small.events", "fleet.large.events_per_vm_hour",
        "fleet.large.steady_wall_s",
        "fleet.event_ratio", "shard.vms", "shard.single.events",
        "shard.sharded.shards", "shard.speedup", "shard.digest",
        "fleet_mix.classes", "fleet_mix.mixed.events",
        "fleet_mix.mixed.flush_cohorts", "fleet_mix.homogeneous.events",
        "fleet_mix.event_ratio", "fleet_mix.sharded.events",
        "fleet_mix.digest",
        "index.portfolio.delivered",
        "index.portfolio.crossings", "index.delivered_fraction",
    ])
    def test_missing_field_rejected(self, dotted):
        payload = _minimal_payload()
        node = payload
        *parents, leaf = dotted.split(".")
        for part in parents:
            node = node[part]
        del node[leaf]
        with pytest.raises(ValueError, match=dotted.split(".")[-1]):
            validate_bench(payload)

    def test_non_numeric_timing_rejected(self):
        payload = _minimal_payload()
        payload["kernel"]["wall_s"] = "fast"
        with pytest.raises(ValueError, match="wall_s"):
            validate_bench(payload)

    def test_zero_speedup_rejected(self):
        payload = _minimal_payload()
        payload["grid"]["speedup"] = 0.0
        with pytest.raises(ValueError, match="speedup"):
            validate_bench(payload)

    def test_non_string_plan_reason_rejected(self):
        payload = _minimal_payload()
        payload["grid"]["parallel_plan"]["reason"] = 3
        with pytest.raises(ValueError, match="reason"):
            validate_bench(payload)

    def test_non_bool_bit_identical_rejected(self):
        payload = _minimal_payload()
        payload["shard"]["bit_identical"] = "yes"
        with pytest.raises(ValueError, match="bit_identical"):
            validate_bench(payload)

    def test_non_bool_mix_bit_identical_rejected(self):
        payload = _minimal_payload()
        payload["fleet_mix"]["bit_identical"] = "yes"
        with pytest.raises(ValueError, match="bit_identical"):
            validate_bench(payload)


class TestFloors:
    def test_healthy_payload_passes(self):
        assert check_bench_floors(_minimal_payload(),
                                  kernel_floor=50.0,
                                  market_floor=50.0) is not None

    def test_kernel_floor_violation(self):
        payload = _minimal_payload()
        with pytest.raises(ValueError, match="kernel"):
            check_bench_floors(payload, kernel_floor=1e12)

    def test_market_floor_violation(self):
        payload = _minimal_payload()
        with pytest.raises(ValueError, match="market stepped"):
            check_bench_floors(payload, kernel_floor=50.0,
                               market_floor=1e12)

    def test_indexed_slower_than_stepped_rejected(self):
        payload = _minimal_payload()
        payload["market"]["indexed"]["events_per_sec"] = 1.0
        with pytest.raises(ValueError, match="not skipping"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_traffic_wakes_scaling_rejected(self):
        payload = _minimal_payload()
        payload["traffic"]["high"]["wakes"] = 41
        with pytest.raises(ValueError, match="request volume"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_traffic_cells_too_close_rejected(self):
        payload = _minimal_payload()
        payload["traffic"]["request_ratio"] = 2.0
        with pytest.raises(ValueError, match="too close"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_fleet_event_ratio_ceiling(self):
        payload = _minimal_payload()
        payload["fleet"]["event_ratio"] = 500.0
        with pytest.raises(ValueError, match="events scale with fleet"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_fleet_wall_ratio_ceiling(self):
        payload = _minimal_payload()
        payload["fleet"]["wall_ratio"] = 80.0
        with pytest.raises(ValueError, match="wall clock scales"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_fleet_per_vm_rate_must_amortize(self):
        payload = _minimal_payload()
        payload["fleet"]["large"]["events_per_vm_hour"] = 5.0
        with pytest.raises(ValueError, match="did not amortize"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_shard_bit_identity_required(self):
        payload = _minimal_payload()
        payload["shard"]["bit_identical"] = False
        with pytest.raises(ValueError, match="not bit-identical"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_shard_event_totals_must_match(self):
        payload = _minimal_payload()
        payload["shard"]["sharded"]["events"] = 5001
        with pytest.raises(ValueError, match="event totals diverge"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_mix_event_ratio_ceiling(self):
        payload = _minimal_payload()
        payload["fleet_mix"]["event_ratio"] = 8.0
        with pytest.raises(ValueError, match="scale with plan count"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_mix_wall_ratio_ceiling(self):
        payload = _minimal_payload()
        payload["fleet_mix"]["wall_ratio"] = 9.0
        with pytest.raises(ValueError, match="wall clock scales with plan"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_mix_must_form_one_group_per_class(self):
        payload = _minimal_payload()
        payload["fleet_mix"]["mixed"]["flush_cohorts"] = 1
        with pytest.raises(ValueError, match="not heterogeneous"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_mix_bit_identity_required(self):
        payload = _minimal_payload()
        payload["fleet_mix"]["bit_identical"] = False
        with pytest.raises(ValueError, match="struct-of-arrays"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_mix_event_totals_must_match(self):
        payload = _minimal_payload()
        payload["fleet_mix"]["sharded"]["events"] = 4999
        with pytest.raises(ValueError, match="mixed sharded cell event"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)

    def test_index_delivered_fraction_ceiling(self):
        payload = _minimal_payload()
        payload["index"]["delivered_fraction"] = 0.9
        with pytest.raises(ValueError, match="per-point market drive"):
            check_bench_floors(payload, kernel_floor=50.0, market_floor=50.0)


class TestArtifact:
    def test_write_and_validate_file(self, tmp_path):
        path = write_bench(_minimal_payload(), out_dir=str(tmp_path))
        assert path.endswith("BENCH_unit.json")
        payload = validate_bench_file(path)
        assert payload["label"] == "unit"
        # Stable, diffable serialization.
        assert json.loads((tmp_path / "BENCH_unit.json").read_text())

    def test_filename_sanitized(self):
        assert bench_filename("a/b c!") == "BENCH_a-b-c-.json"


class TestMeasurements:
    def test_kernel_bench_counts(self):
        result = measure_kernel(events=2000, repeats=1)
        assert result["events"] == 2000
        assert result["events_per_sec"] > 0
        assert result["wall_s"] > 0

    def test_run_bench_micro(self, tmp_path):
        """A miniature full pipeline: run, write, re-validate."""
        payload = run_bench(label="micro", smoke=True, days=0.5, vms=2,
                            workers=2, kernel_events=2000,
                            fleet_vms=400, fleet_days=0.5)
        path = write_bench(payload, out_dir=str(tmp_path))
        loaded = validate_bench_file(path)
        assert loaded["grid"]["cells"] == 4
        assert loaded["grid"]["cache"]["misses"] == 4.0
        assert loaded["grid"]["cache"]["warm_disk_hits"] == 4.0
        assert loaded["fleet"]["large"]["vms"] == 400
        assert loaded["fleet"]["small"]["flush_cohorts"] == 1
        assert loaded["shard"]["vms"] == 400
        assert loaded["shard"]["bit_identical"] is True
        assert loaded["shard"]["sharded"]["shards"] == 2
        assert loaded["fleet_mix"]["classes"] == 8
        assert loaded["fleet_mix"]["mixed"]["flush_cohorts"] >= 8
        assert loaded["fleet_mix"]["bit_identical"] is True
        assert loaded["fleet_mix"]["event_ratio"] < 2.0
        assert loaded["index"]["portfolio"]["policy"] == "IT-0.125"
        assert loaded["index"]["delivered_fraction"] < 0.25
