"""Tests for the real price-history importer."""

import json

import pytest

from repro.traces.importer import _parse_timestamp, load_aws_json, load_csv

OD = {"m3.medium": 0.07, "m3.large": 0.14}


class TestTimestampParsing:
    def test_epoch_number(self):
        assert _parse_timestamp(1700000000) == 1700000000.0

    def test_epoch_string(self):
        assert _parse_timestamp("1700000000.5") == 1700000000.5

    def test_iso_with_z(self):
        assert _parse_timestamp("2014-04-01T00:00:00Z") == \
            _parse_timestamp("2014-04-01T00:00:00+00:00")

    def test_naive_iso_is_utc(self):
        assert _parse_timestamp("2014-04-01T00:00:10") - \
            _parse_timestamp("2014-04-01T00:00:00Z") == pytest.approx(10.0)


class TestAwsJson:
    def _write(self, tmp_path, entries):
        path = tmp_path / "history.json"
        path.write_text(json.dumps({"SpotPriceHistory": entries}))
        return str(path)

    def test_basic_import(self, tmp_path):
        path = self._write(tmp_path, [
            {"Timestamp": "2014-04-01T00:00:00Z", "InstanceType":
             "m3.medium", "AvailabilityZone": "us-east-1a",
             "SpotPrice": "0.0081"},
            {"Timestamp": "2014-04-01T01:00:00Z", "InstanceType":
             "m3.medium", "AvailabilityZone": "us-east-1a",
             "SpotPrice": "0.0085"},
        ])
        archive, skipped = load_aws_json(path, OD)
        assert skipped == []
        trace = archive.get("m3.medium", "us-east-1a")
        assert list(trace.times) == [0.0, 3600.0]  # rebased
        assert trace.prices[1] == pytest.approx(0.0085)
        assert trace.on_demand_price == 0.07

    def test_out_of_order_records_sorted(self, tmp_path):
        path = self._write(tmp_path, [
            {"Timestamp": "2014-04-01T02:00:00Z", "InstanceType":
             "m3.medium", "AvailabilityZone": "a", "SpotPrice": "0.02"},
            {"Timestamp": "2014-04-01T00:00:00Z", "InstanceType":
             "m3.medium", "AvailabilityZone": "a", "SpotPrice": "0.01"},
        ])
        archive, _ = load_aws_json(path, OD)
        trace = archive.get("m3.medium", "a")
        assert list(trace.prices) == [0.01, 0.02]

    def test_unknown_type_skipped(self, tmp_path):
        path = self._write(tmp_path, [
            {"Timestamp": "2014-04-01T00:00:00Z", "InstanceType":
             "z9.mega", "AvailabilityZone": "a", "SpotPrice": "0.5"},
            {"Timestamp": "2014-04-01T00:00:00Z", "InstanceType":
             "m3.medium", "AvailabilityZone": "a", "SpotPrice": "0.01"},
        ])
        archive, skipped = load_aws_json(path, OD)
        assert ("z9.mega", "a") in skipped
        assert len(archive) == 1

    def test_duplicate_timestamp_keeps_latest(self, tmp_path):
        path = self._write(tmp_path, [
            {"Timestamp": "2014-04-01T00:00:00Z", "InstanceType":
             "m3.medium", "AvailabilityZone": "a", "SpotPrice": "0.01"},
            {"Timestamp": "2014-04-01T00:00:00Z", "InstanceType":
             "m3.medium", "AvailabilityZone": "a", "SpotPrice": "0.03"},
        ])
        archive, _ = load_aws_json(path, OD)
        trace = archive.get("m3.medium", "a")
        assert len(trace) == 1

    def test_bad_document_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"SpotPriceHistory": "nope"}))
        with pytest.raises(ValueError):
            load_aws_json(str(path), OD)


class TestCsv:
    def test_basic_import(self, tmp_path):
        path = tmp_path / "prices.csv"
        path.write_text(
            "Timestamp,Instance_Type,Availability_Zone,Spot_Price,extra\n"
            "0,m3.medium,a,0.008,x\n"
            "3600,m3.medium,a,0.009,y\n"
            "0,m3.large,a,0.016,z\n")
        archive, skipped = load_csv(str(path), OD)
        assert len(archive) == 2
        assert archive.get("m3.large", "a").prices[0] == pytest.approx(0.016)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,price\n0,0.01\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_csv(str(path), OD)

    def test_imported_archive_drives_a_market(self, tmp_path, env, zone):
        # The acid test: an imported trace plugs straight into the
        # cloud substrate.
        from repro.cloud.api import CloudApi
        from repro.cloud.instance_types import M3_CATALOG
        from repro.cloud.instances import Market
        from repro.cloud.zones import default_region
        path = tmp_path / "prices.csv"
        path.write_text(
            "timestamp,instance_type,availability_zone,spot_price\n"
            f"0,m3.medium,{zone.name},0.008\n"
            f"50000,m3.medium,{zone.name},0.900\n"
            f"58000,m3.medium,{zone.name},0.008\n"
            f"864000,m3.medium,{zone.name},0.008\n")
        archive, _ = load_csv(str(path), OD)
        api = CloudApi(env, default_region(1), M3_CATALOG)
        api.install_market(M3_CATALOG.get("m3.medium"), zone,
                           archive.get("m3.medium", zone.name))
        def flow():
            instance = yield api.run_instance(
                M3_CATALOG.get("m3.medium"), zone, Market.SPOT, bid=0.07)
            yield instance.terminated
            return instance
        instance = env.run(until=env.process(flow()))
        assert instance.terminated_at == pytest.approx(50000.0 + 120.0)
