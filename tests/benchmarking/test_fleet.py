"""The fleet-scale cell benchmark: events must not scale with VMs."""

import pytest

from repro.benchmarking.fleet import (
    _drive_cell,
    measure_fleet_mix,
    measure_fleet_scaling,
    measure_sharded_fleet,
)
from repro.workloads import default_fleet_mix


class TestFleetScaling:
    def test_events_flat_in_fleet_size(self):
        result = measure_fleet_scaling(small_vms=5, large_vms=200,
                                       days=0.25)
        small, large = result["small"], result["large"]
        assert small["vms"] == 5
        assert large["vms"] == 200
        # The whole homogeneous fleet forms one cohort; both cells arm
        # the same rounds, so event totals stay nearly flat.
        assert small["flush_cohorts"] == 1
        assert large["flush_cohorts"] == 1
        assert large["flush_flows"] == small["flush_flows"]
        assert result["event_ratio"] < 2.0
        assert large["events_per_vm_hour"] < small["events_per_vm_hour"]
        for cell in (small, large):
            assert cell["boot_wall_s"] > 0
            assert cell["steady_wall_s"] >= 0
            assert cell["wall_s"] == pytest.approx(
                cell["boot_wall_s"] + cell["steady_wall_s"])

    def test_spares_never_poll_on_calm_market(self):
        result = measure_fleet_scaling(small_vms=5, large_vms=40,
                                       days=0.25)
        for cell in (result["small"], result["large"]):
            assert cell["spare_wakes"] == 0
            assert cell["spare_polls"] == 0

    def test_cell_sizes_validated(self):
        with pytest.raises(ValueError):
            measure_fleet_scaling(small_vms=10, large_vms=10)


class TestShardedFleet:
    def test_sharded_bench_is_bit_identical(self):
        result = measure_sharded_fleet(vms=40, days=0.25, markets=4,
                                       shard_counts=(1, 2))
        assert result["bit_identical"] is True
        assert result["single"]["shards"] == 1
        assert result["sharded"]["shards"] == 2
        assert result["single"]["events"] == result["sharded"]["events"]
        assert result["speedup"] > 0
        assert len(result["digest"]) == 64

    def test_shard_counts_validated(self):
        with pytest.raises(ValueError, match="single-process"):
            measure_sharded_fleet(vms=40, days=0.25, shard_counts=(2, 4))
        with pytest.raises(ValueError, match="one VM per market"):
            measure_sharded_fleet(vms=2, days=0.25, markets=4)


class TestFleetMix:
    def test_single_class_mix_reproduces_homogeneous_cell(self):
        """The base mix class IS the homogeneous cell: same memory
        model, same plan, same deterministic event total."""
        homogeneous = _drive_cell(40, 0.25, seed=11)
        mixed = _drive_cell(40, 0.25, seed=11,
                            mix=default_fleet_mix(classes=1))
        assert mixed["events"] == homogeneous["events"]
        assert mixed["flush_flows"] == homogeneous["flush_flows"]
        assert mixed["flush_cohorts"] == 1

    def test_soa_core_matches_group_core_flows(self):
        """Same fleet, same mix: the SoA core must arm exactly the
        flows the per-cohort core arms (the bit-identity contract at
        the flow level; stream-level identity lives in tests/virt)."""
        mix = default_fleet_mix(classes=4)
        group = _drive_cell(40, 0.25, seed=11, mix=mix, soa=False)
        soa = _drive_cell(40, 0.25, seed=11, mix=mix, soa=True)
        assert soa["flush_flows"] == group["flush_flows"]
        assert soa["flush_cohorts"] == group["flush_cohorts"] == 4

    def test_mix_bench_holds_the_ratchet(self):
        result = measure_fleet_mix(vms=200, days=0.25, classes=8,
                                   digest_vms=40, digest_markets=4,
                                   shard_counts=(1, 2))
        assert result["classes"] == 8
        assert result["mixed"]["flush_cohorts"] == 8
        # Geometric write factors: the mixed cell's summed round rate
        # stays near 1.5x the base class, nowhere near the 8x a
        # per-plan wakeup loop would cost.
        assert result["event_ratio"] < 2.0
        assert result["bit_identical"] is True
        assert result["single"]["events"] == result["sharded"]["events"]
        assert len(result["digest"]) == 64

    def test_mix_bench_reuses_matching_baseline(self):
        baseline = _drive_cell(40, 0.25, seed=11)
        result = measure_fleet_mix(vms=40, days=0.25, classes=2,
                                   baseline=baseline, digest_vms=40,
                                   digest_markets=4, shard_counts=(1, 2))
        assert result["homogeneous"] is baseline
        with pytest.raises(ValueError, match="baseline cell shape"):
            measure_fleet_mix(vms=80, days=0.25, classes=2,
                              baseline=baseline)
