"""Table 1: latencies of SpotCheck's EC2 operations.

The paper reports median/mean/max/min over 20 measurements taken across
one week for the m3.medium type.  We draw the same 20 samples from the
calibrated latency model and report the same statistics, alongside the
paper's values for comparison.
"""

import numpy as np

from repro.cloud.latency import OperationLatencyModel, TABLE1_SPECS
from repro.sim.rng import RngRegistry

#: Operation name -> label used in the paper's table.
PAPER_LABELS = {
    "start_spot_instance": "Start spot instance",
    "start_on_demand_instance": "Start on-demand instance",
    "terminate_instance": "Terminate instance",
    "detach_volume": "Unmount and detach EBS",
    "attach_volume": "Attach and mount EBS",
    "attach_network_interface": "Attach Network interface",
    "detach_network_interface": "Detach Network interface",
}


def run(seed=20140401, samples=20):
    """Sample each operation and summarize.

    Returns rows of ``(label, median, mean, max, min, paper_spec)``.
    """
    rng = RngRegistry(seed).stream("table1")
    model = OperationLatencyModel(rng)
    rows = []
    for operation, label in PAPER_LABELS.items():
        draws = model.sample(operation, size=samples)
        spec = TABLE1_SPECS[operation]
        rows.append({
            "operation": label,
            "median": float(np.median(draws)),
            "mean": float(np.mean(draws)),
            "max": float(np.max(draws)),
            "min": float(np.min(draws)),
            "paper": spec,
        })
    downtime = model.migration_downtime_mean()
    return {"rows": rows, "migration_downtime_mean": downtime}
