"""Bounded-time VM migration: the end-to-end revocation path.

When the platform warns that a spot server will terminate in
``warning_period`` seconds, each resident nested VM must reach safety
before the deadline.  The sequence is:

1. (optionally) ramp up the checkpoint frequency, shrinking the
   residual dirty state while the VM keeps running;
2. pause the VM and commit the stale state to the backup server — the
   commit is guaranteed to fit the time bound by construction;
3. detach the EBS volume and network interface, reattach both at the
   destination (the ~23 s of EC2 control-plane downtime, Table 1);
4. restore at the destination — full (stop-and-copy) or lazy.

This module composes :mod:`.checkpoint` and :mod:`.restore` into a
single :class:`MigrationOutcome` with the downtime/degradation split
the availability accounting consumes.
"""

from dataclasses import dataclass

from repro.virt.migration.checkpoint import CheckpointConfig, CheckpointStream


@dataclass(frozen=True)
class BoundedMigrationConfig:
    """Mechanism variant knobs (the four bars of Figures 10-12).

    Attributes
    ----------
    checkpoint:
        Continuous-checkpointing parameters.
    restore_kind:
        ``"full"`` or ``"lazy"``.
    restore_optimized:
        Whether the backup server's read-path optimizations (fadvise
        hints, prefetch) are enabled — "SpotCheck" vs "Unoptimized".
    warning_ramp:
        Whether the checkpoint-frequency ramp runs during the warning
        (the SpotCheck improvement over Yank).
    """

    checkpoint: CheckpointConfig = CheckpointConfig()
    restore_kind: str = "lazy"
    restore_optimized: bool = True
    warning_ramp: bool = True

    def __post_init__(self):
        if self.restore_kind not in ("full", "lazy"):
            raise ValueError(f"unknown restore kind {self.restore_kind!r}")

    @classmethod
    def yank_baseline(cls):
        """Unoptimized full restore, no warning ramp (akin to Yank)."""
        return cls(restore_kind="full", restore_optimized=False,
                   warning_ramp=False)

    @classmethod
    def spotcheck_full(cls):
        """SpotCheck's optimizations, but full restoration."""
        return cls(restore_kind="full", restore_optimized=True,
                   warning_ramp=True)

    @classmethod
    def unoptimized_lazy(cls):
        """Lazy restoration without the backup read-path tuning."""
        return cls(restore_kind="lazy", restore_optimized=False,
                   warning_ramp=False)

    @classmethod
    def spotcheck_lazy(cls):
        """The full SpotCheck mechanism (default)."""
        return cls(restore_kind="lazy", restore_optimized=True,
                   warning_ramp=True)


@dataclass(frozen=True)
class MigrationOutcome:
    """What one bounded-time migration cost the nested VM."""

    downtime_s: float
    degraded_s: float
    commit_bytes: float
    state_safe: bool
    within_deadline: bool

    @property
    def disruption_s(self):
        return self.downtime_s + self.degraded_s


class BoundedTimeMigration:
    """Plans bounded-time migrations for one VM against one backup server.

    Parameters
    ----------
    memory:
        The VM's :class:`~repro.virt.memory.MemoryModel`.
    backup_server:
        The :class:`~repro.backup.server.BackupServer` holding the image.
    config:
        Mechanism variant.
    """

    def __init__(self, memory, backup_server, config=None):
        self.memory = memory
        self.server = backup_server
        self.config = config or BoundedMigrationConfig()
        self.stream = CheckpointStream(memory, self.config.checkpoint)

    def plan(self, warning_period_s, concurrent=1,
             ec2_ops_downtime_s=0.0):
        """Plan the revocation-to-running sequence.

        Parameters
        ----------
        warning_period_s:
            Time between the revocation notice and forced termination.
        concurrent:
            Number of sibling VMs restoring from the same backup server
            at the same time (revocation storms raise this).
        ec2_ops_downtime_s:
            Control-plane downtime (EBS + ENI detach/attach) to charge;
            the controller samples it from the Table 1 model.
        """
        from repro.virt.migration.restore import RestorePlanner

        cfg = self.config
        commit_downtime = self.stream.final_commit_downtime_s(
            ramped=cfg.warning_ramp)
        warn_degraded = self.stream.warning_degradation_s(
            warning_period_s, ramped=cfg.warning_ramp)
        commit_bytes = commit_downtime * cfg.checkpoint.commit_bandwidth_bps

        planner = RestorePlanner(self.server)
        restore = planner.plan(
            self.memory.total_bytes, kind=cfg.restore_kind,
            optimized=cfg.restore_optimized, concurrent=concurrent)

        downtime = commit_downtime + ec2_ops_downtime_s + restore.downtime_s
        degraded = warn_degraded + restore.degraded_s
        # State is safe iff the stale-state commit fits both the chosen
        # time bound and the platform's warning (degradation while the
        # VM keeps running does not endanger state) — and a conforming
        # checkpoint interval exists at all.  A VM that dirties faster
        # than the commit path can absorb at any interval has no honest
        # bound, even when the best-effort residual happens to fit.
        within = (commit_downtime <= cfg.checkpoint.time_bound_s
                  and commit_downtime <= warning_period_s)
        return MigrationOutcome(
            downtime_s=downtime,
            degraded_s=degraded,
            commit_bytes=commit_bytes,
            state_safe=within and self.stream.commit_bound_feasible(),
            within_deadline=within,
        )
