"""The SpotCheck controller.

The controller is the derivative cloud's brain (Section 5): it exposes
an EC2-like interface to customers (request / relinquish servers),
rents native spot and on-demand servers underneath, slices them with
the nested hypervisor, maps nested VMs to pools and backup servers per
the configured policies, and reacts to pool dynamics — revocation
warnings trigger bounded-time migrations to the on-demand side, price
recoveries trigger live migrations back to spot.
"""

from repro.cloud.errors import (
    ApiError,
    BidTooLow,
    CapacityError,
    InvalidOperation,
)
from repro.cloud.instances import InstanceState, Market
from repro.cloud.spot_market import PriceWatch
from repro.faults.retry import retry_call
from repro.core.accounting import AccountingLedger
from repro.core.config import SpotCheckConfig
from repro.core.customer import Customer
from repro.core.migration_manager import MigrationManager
from repro.core.policies.allocation import make_allocation_policy
from repro.core.policies.bidding import make_bid_policy
from repro.core.policies.placement import GreedyCheapestFirst, StabilityFirst
from repro.core.pools import BackupPool, OnDemandPool, PoolManager, SpotPool
from repro.backup.server import BackupServer
from repro.backup.store import CheckpointStore
from repro.virt.hypervisor import HostVM
from repro.virt.migration.checkpoint import CheckpointStream
from repro.virt.vm import NestedVM, VMState


class _Storm:
    """Bookkeeping for one pool-wide revocation event."""

    def __init__(self, pool_key, when):
        self.pool_key = pool_key
        self.when = when
        self.hosts = []
        self.vms = []
        self.backup_load = {}
        self._finalized = False

    def add_host(self, host, vms):
        self.hosts.append(host)
        self.vms.extend(vms)

    def finalize_once(self):
        """Compute backup concurrency once every warning registered."""
        if self._finalized:
            return False
        self._finalized = True
        for vm in self.vms:
            backup = vm.backup_assignment
            if backup is not None:
                self.backup_load[backup.id] = \
                    self.backup_load.get(backup.id, 0) + 1
        return True


class SpotCheckController:
    """A SpotCheck deployment over one native cloud endpoint.

    Parameters
    ----------
    env:
        Simulation environment.
    api:
        :class:`~repro.cloud.api.CloudApi` for the native platform.
    config:
        :class:`~repro.core.config.SpotCheckConfig`.
    slot_type_name:
        The advertised nested-VM type (the paper sells m3.medium
        equivalents).
    """

    def __init__(self, env, api, config=None, slot_type_name="m3.medium"):
        self.env = env
        self.api = api
        self.config = config or SpotCheckConfig()
        self.slot_itype = api.catalog.get(slot_type_name)
        self.pools = PoolManager()
        self.ledger = AccountingLedger(env)
        self.bid_policy = make_bid_policy(
            self.config.bid_policy, self.config.bid_multiple,
            floor_fraction=self.config.knee_floor_fraction)
        self.allocation = self._make_allocation()
        from repro.core.policies.spares import HotSparePolicy
        self.spares = HotSparePolicy(
            self.config.hot_spares, use_staging=self.config.use_staging)
        self.spares.on_deficit = self._kick_spares
        #: Pending replenisher sleep; deficit edges and finalize succeed it.
        self._spares_wakeup = None
        self._spares_stats = {"wakes": 0, "polls": 0, "provisioned": 0}
        self.backup_pool = BackupPool(self._provision_backup_server)
        self.migrations = MigrationManager(self)
        self.customers = {}
        self.zone = None
        self.zones = []
        #: vm.id -> (vm, home spot pool) for VMs parked on on-demand.
        self._parked = {}
        self._storms = {}
        self._returning_pools = set()
        self._draining_pools = set()
        self._rng = env.rng.stream("controller")
        self._finalized = False
        self.backup_failures = 0
        #: Optional hook ``on_storm(pool, storm)`` fired once per
        #: finalized revocation storm — shard event taps ride on this
        #: instead of the obs bus (which would pin markets to the
        #: per-point step drive).
        self.on_storm = None
        #: Optional :class:`~repro.traffic.engine.TrafficEngine`.
        self.traffic = None
        self.predictor = None
        if self.config.predictive_migration:
            from repro.core.policies.prediction import RevocationPredictor
            self.predictor = RevocationPredictor(
                level_fraction=self.config.prediction_level_fraction,
                jump_factor=self.config.prediction_jump_factor)

    def _make_allocation(self):
        name = self.config.allocation_policy
        if name in ("greedy", "stability"):
            return None  # Placement policies are consulted per request.
        overrides = {}
        if self.config.portfolio and (name.startswith("IT")
                                      or name.startswith("OC")):
            overrides = dict(self.config.portfolio)
        policy = make_allocation_policy(
            name, now=lambda: self.env.now, **overrides)
        if hasattr(policy, "on_unclocked") and policy.on_unclocked is None:
            policy.on_unclocked = \
                lambda p=policy: self._note_unclocked_policy(p)
        return policy

    def _note_unclocked_policy(self, policy):
        """A time-windowed policy weighed pools without a clock.

        Controller-built policies are always clocked; this fires only
        when an externally constructed policy is grafted on, and turns
        the historical silent all-time-window degradation into an
        observable event.
        """
        obs = self.env.obs
        if obs is not None:
            obs.emit("policy.unclocked", policy=policy.name)
            obs.metrics.counter("policy_unclocked_total",
                                policy=policy.name).inc()

    # -- setup -----------------------------------------------------------

    def install_pools(self, archive, zone, type_names=None):
        """Create markets and pools from a trace archive.

        Parameters
        ----------
        archive:
            :class:`~repro.traces.archive.TraceArchive` with one trace
            per (type, zone) market to operate in.
        zone:
            The primary availability zone, or a list of zones for
            multi-zone operation ("SpotCheck's pool management
            strategies operate across multiple markets by permitting
            the unrestricted choice of server types and availability
            zones (within a region)").  Each zone gets its own spot
            pools and its own on-demand failover pool, because network
            volumes are zone-locked.
        type_names:
            Pool types to create (default: every type present in the
            archive for each zone).
        """
        zones = [zone] if not isinstance(zone, (list, tuple)) else list(zone)
        if not zones:
            raise ValueError("at least one zone is required")
        self.zone = zones[0]
        self.zones = zones
        for one_zone in zones:
            zone_types = type_names
            if zone_types is None:
                zone_types = sorted({t for (t, z) in archive.keys()
                                     if z == one_zone.name})
            for type_name in zone_types:
                itype = self.api.catalog.get(type_name)
                trace = archive.get(type_name, one_zone.name)
                market = self.api.install_market(itype, one_zone, trace)
                bid = self.bid_policy.bid_for(itype, trace=trace)
                pool = SpotPool(itype, one_zone, self.slot_itype, market, bid)
                self.pools.add_spot_pool(pool)
                self._wire_pool_dynamics(market, pool)
            od_pool = OnDemandPool(self.slot_itype, one_zone, self.slot_itype)
            self.pools.add_on_demand_pool(od_pool)
        if self.allocation is not None and \
                hasattr(self.allocation, "install"):
            # Portfolio policies register their crossing watches on the
            # freshly created markets and solve the initial weights.
            self.allocation.install(self)
        if self.config.hot_spares > 0:
            self.env.process(self._replenish_spares())

    def _wire_pool_dynamics(self, market, pool):
        """Subscribe pool dynamics to one market's price trace.

        With the predictor off, the controller only ever *acts* on two
        price bands — the proactive window (od, bid] and the
        return-to-spot recovery band (-inf, od] — so it registers
        crossing watches and the market drive skips every other point.
        The predictor's EWMA must see every sample in controller gate
        order, so predictive runs fall back to the step-listener tier.
        """
        if self.predictor is not None:
            market.on_price_change(
                lambda mkt, price, p=pool: self._on_price_change(p, price))
            return
        od_price = pool.itype.on_demand_price
        if self.config.proactive_migration and od_price < pool.bid:
            market.add_watch(PriceWatch(
                lambda mkt, price, p=pool: self._maybe_proactive_drain(
                    p, price),
                lo=od_price, hi=pool.bid))
        if self.config.return_to_spot:
            # Inactive while nothing is parked (most of the time, which
            # is what makes the recovery band skippable at all); the
            # parking sites rearm the market when the gate opens.
            market.add_watch(PriceWatch(
                lambda mkt, price, p=pool: self._maybe_return_to_spot(
                    p, price),
                hi=od_price,
                active=lambda p=pool: p.key not in self._returning_pools
                and bool(self._parked_vms_of(p))))

    def _rearm_market(self, pool):
        """Wake a pool's market drive after a watch gate opened."""
        market = getattr(pool, "market", None)
        if market is not None:
            market.rearm()

    def attach_traffic(self, engine):
        """Score this deployment's customers with a traffic engine.

        The engine is flushed from :meth:`finalize`, so ledgers are
        complete even when the caller tears the simulation down before
        the engine's own horizon.
        """
        self.traffic = engine

    def start_customer(self, name=None, traffic=None):
        """Register a customer; ``traffic`` (a ``CustomerTraffic``)
        puts them under the attached traffic engine's SLA watch."""
        customer = Customer(name)
        self.customers[customer.id] = customer
        if traffic is not None:
            if self.traffic is None:
                raise ValueError(
                    "attach_traffic() before start_customer(traffic=...)")
            self.traffic.watch(customer, traffic)
        return customer

    # -- public API (EC2-like) ---------------------------------------------

    def request_server(self, customer, type_name=None, workload=None):
        """Process: allocate a nested VM for ``customer``.

        Returns the running :class:`~repro.virt.vm.NestedVM`.
        """
        return self.env.process(
            self._request_flow(customer, type_name, workload))

    def relinquish(self, vm):
        """Process: the customer returns ``vm``; resources are freed."""
        return self.env.process(self._relinquish_flow(vm))

    # -- request flow ------------------------------------------------------

    def _request_flow(self, customer, type_name, workload):
        slot_itype = self.slot_itype if type_name is None \
            else self.api.catalog.get(type_name)
        if slot_itype.name != self.slot_itype.name:
            raise ValueError(
                f"this deployment sells {self.slot_itype.name}; "
                f"got {slot_itype.name}")

        vm = NestedVM(self.env, slot_itype, workload=workload,
                      customer=customer)
        vm.checkpoint_stream = CheckpointStream(
            vm.memory, self.config.mechanism.checkpoint)

        host, on_spot, pool = yield from self._place_vm(vm, customer)

        host.hypervisor.boot(vm)
        vm.host = host
        customer.add_vm(vm)
        self.ledger.vm_created(vm)
        obs = self.env.obs
        if obs is not None:
            obs.emit("vm.created", vm=vm.id, customer=customer.id,
                     host=host.instance.id, spot=on_spot)
            obs.metrics.counter("vms_created_total").inc()

        if not on_spot:
            self._parked[vm.id] = (vm, pool)
            self._rearm_market(pool)
        elif host.instance.state is InstanceState.MARKED_FOR_TERMINATION:
            # The warning arrived between placement and boot: this VM
            # missed the host's storm, so it joins the exodus directly
            # (live path — it has no backup image yet).
            deadline = host.instance.termination_notice.value
            self.migrations.migrate_on_revocation(vm, host, deadline, pool)
        else:
            self._assign_backup(vm)
        return vm

    def _place_vm(self, vm, customer):
        """Process body: attach ``vm``'s plumbing to a host with a slot.

        Plumbing (interface, IP, volume) is attached *before* the VM
        boots, so a half-built VM is never visible to revocation
        storms.  Setup races (the chosen host revoked under us while
        the control-plane operations ran) retry immediately on a fresh
        host; transient control-plane errors retry with jittered
        backoff inside :meth:`_api_retry`.  When the policy's attempt
        budget runs out the flow degrades to a direct on-demand
        placement — the VM is born parked and the price dynamics bring
        it to spot later — instead of failing the request.
        """
        policy = self.config.retry
        pool = None
        for _attempt in range(policy.max_attempts):
            pool = self._choose_pool(customer)
            host = None
            try:
                host, on_spot = yield from self._host_with_slot(pool)
                yield from self._wire_networking(vm, customer, host)
                yield from self._attach_storage(vm, host)
            except (ApiError, CapacityError) as exc:
                self._unwire(vm)
                if host is not None:
                    host.hypervisor.cancel_reservation()
                self._note_degraded("request.placement", exc)
                continue
            if host.instance.is_running:
                return host, on_spot, pool
            self._unwire(vm)
            host.hypervisor.cancel_reservation()
        host = yield from self._fallback_on_demand(vm, customer, pool)
        return host, False, pool

    def _fallback_on_demand(self, vm, customer, pool):
        """Process body: last-resort placement on the on-demand side.

        Loops — free slot, fresh on-demand host, then a hold-down and
        another round — until the platform yields a host.  This is the
        graceful-degradation tail of the request flow: under capacity
        episodes or error storms the request is deferred, never
        failed.
        """
        zone = pool.zone if pool is not None else self.zone
        od_pool = self.pools.on_demand_pool(self.slot_itype.name, zone.name)
        while True:
            host = od_pool.host_with_free_slot()
            if host is None:
                try:
                    instance = yield from self._api_retry(
                        lambda: self.api.run_instance(
                            self.slot_itype, zone, Market.ON_DEMAND),
                        "start_on_demand_instance")
                except (ApiError, CapacityError) as exc:
                    self._note_degraded("request.deferred", exc)
                    yield self.env.timeout(self.config.retry.max_delay_s)
                    continue
                host = HostVM(self.env, instance, self.slot_itype, slots=1)
                od_pool.add_host(host)
            host.hypervisor.reserve_slot()
            try:
                yield from self._wire_networking(vm, customer, host)
                yield from self._attach_storage(vm, host)
            except (ApiError, CapacityError) as exc:
                self._unwire(vm)
                host.hypervisor.cancel_reservation()
                self._note_degraded("request.deferred", exc)
                yield self.env.timeout(self.config.retry.base_delay_s)
                continue
            return host

    def _api_retry(self, factory, operation, deadline=None):
        """Retry generator for one control-plane call (``yield from``)."""
        return retry_call(self.env, factory, self.config.retry, operation,
                          deadline=deadline)

    def _note_degraded(self, path, exc):
        """Publish one graceful-degradation decision."""
        obs = self.env.obs
        if obs is not None:
            obs.emit("fault.degraded", path=path, error=type(exc).__name__)
            obs.metrics.counter("fault_degradations_total", path=path).inc()

    def _unwire(self, vm):
        """Detach a never-booted VM's plumbing after a setup race."""
        if vm.eni is not None:
            if vm.eni.is_attached:
                vm.eni._detach()
            if vm.private_ip is not None:
                self.api.vpc.unassign_private_ip(vm.eni, vm.private_ip)
                vm.private_ip = None
            vm.eni = None
        if vm.volume is not None:
            vm.volume._force_detach()
            vm.volume.delete()
            vm.volume = None
        return
        yield  # pragma: no cover — generator form for symmetry

    def _choose_pool(self, customer=None):
        spot_pools = self.pools.all_spot_pools()
        if self.allocation is not None:
            return self.allocation.choose(spot_pools, self._rng,
                                          customer=customer)
        # Placement policies pick a (type, zone, slots) from the markets.
        markets = {market.key: market for market in self.api.marketplace}
        if self.config.allocation_policy == "greedy":
            policy = GreedyCheapestFirst(self.api.catalog)
            choice = policy.choose(self.slot_itype, markets)
        else:
            policy = StabilityFirst(self.api.catalog)
            choice = policy.choose(self.slot_itype, markets, now=self.env.now)
        key = ("spot", choice.itype.name, choice.zone.name)
        if key not in self.pools.spot_pools:
            market = self.api.marketplace.market(choice.itype, choice.zone)
            pool = SpotPool(choice.itype, choice.zone, self.slot_itype,
                            market, self.bid_policy.bid_for(choice.itype))
            self.pools.add_spot_pool(pool)
            self._wire_pool_dynamics(market, pool)
        return self.pools.spot_pools[key]

    def _slots_per_host(self, host_itype):
        if not self.config.slicing:
            return 1
        return max(int(min(
            host_itype.memory_gib // self.slot_itype.memory_gib,
            host_itype.vcpus // self.slot_itype.vcpus)), 1)

    # -- bulk provisioning -------------------------------------------------

    def provision_fleet(self, customer, count, pool=None,
                        workload_factory=None):
        """Process: bulk-boot ``count`` nested VMs onto one spot pool.

        The fleet-scale request path: one batched ``run_instances``
        call launches every host (one control-plane latency for the
        whole fleet), VMs boot directly into the sliced slots, and
        plan-level per-VM work (the live-fits-warning planner, the
        iterative stream-rate solve) is computed once per workload
        class instead of once per VM.  Unlike :meth:`request_server`,
        the bulk path skips per-VM ENI/volume plumbing — subnets are
        /24s, so a 100k-VM cell cannot hold per-VM addresses, and
        nothing in the steady-state machinery needs them (every
        consumer null-checks ``vm.eni`` / ``vm.volume``).

        Returns the list of running nested VMs.
        """
        return self.env.process(
            self._provision_fleet(customer, count, pool, workload_factory))

    def _provision_fleet(self, customer, count, pool, workload_factory):
        if count < 1:
            raise ValueError("count must be at least 1")
        if pool is None:
            pool = next(iter(self.pools.spot_pools.values()))
        slots = self._slots_per_host(pool.itype)
        host_count = -(-count // slots)
        instances = yield self.api.run_instances(
            pool.itype, pool.zone, Market.SPOT, host_count, bid=pool.bid)
        hosts = []
        for instance in instances:
            host = HostVM(self.env, instance, self.slot_itype, slots=slots)
            pool.add_host(host)
            self.env.process(self._watch_spot_host(host, pool))
            hosts.append(host)

        warning = self.api.marketplace.warning_period
        #: Per-workload-class plan cache keyed by the VM's memory model
        #: (a frozen dataclass): the planner verdict and stream rate
        #: are pure functions of the dirtying profile, and distinct
        #: workload classes may share one python type (write-scaled
        #: fleet mixes), so the type name is not a safe key.
        class_plans = {}
        vms = []
        booted = 0
        obs = self.env.obs
        for host in hosts:
            for _slot in range(slots):
                if booted >= count:
                    break
                workload = (workload_factory() if workload_factory
                            is not None else None)
                vm = NestedVM(self.env, self.slot_itype, workload=workload,
                              customer=customer)
                vm.checkpoint_stream = CheckpointStream(
                    vm.memory, self.config.mechanism.checkpoint)
                key = vm.memory
                plan = class_plans.get(key)
                if plan is None:
                    plan = {
                        "live_fits": self.migrations.live_fits_warning(
                            vm.memory, warning),
                        "rate": vm.checkpoint_stream.stream_rate_bps(),
                    }
                    class_plans[key] = plan
                host.hypervisor.boot(vm)
                vm.host = host
                customer.add_vm(vm)
                self.ledger.vm_created(vm)
                if not (self.config.live_migration_only
                        or plan["live_fits"]):
                    backup = self.backup_pool.assign(
                        vm.id, plan["rate"], cap=self.config.vms_per_backup)
                    vm.backup_assignment = backup
                    backup.store.open_image(vm.id, vm.memory.total_bytes)
                    backup.store.seed_full_image(vm.id)
                    if self.config.steady_checkpoint_flush:
                        self.migrations.steady_flush_join(vm, backup)
                booted += 1
                vms.append(vm)
        if obs is not None:
            obs.emit("fleet.provisioned", vms=len(vms), hosts=len(hosts),
                     pool_key=pool.key)
            obs.metrics.counter("vms_created_total").inc(len(vms))
        return vms

    def _host_with_slot(self, pool):
        """Process body: a host in ``pool`` with a slot reserved for us.

        Reuses reserved slots on existing (healthy) hosts first, then
        launches a new spot host; if the pool's market price currently
        exceeds the bid, falls back to an on-demand host (the VM is
        born parked).
        """
        host = pool.host_with_free_slot()
        if host is not None and host.instance.state is \
                InstanceState.RUNNING:
            host.hypervisor.reserve_slot()
            return host, True
        try:
            instance = yield from self._api_retry(
                lambda: self.api.run_instance(
                    pool.itype, pool.zone, Market.SPOT, bid=pool.bid),
                "start_spot_instance")
        except (BidTooLow, CapacityError):
            od_pool = self.pools.on_demand_pool(
                self.slot_itype.name, pool.zone.name)
            host = od_pool.host_with_free_slot()
            if host is None:
                instance = yield from self._api_retry(
                    lambda: self.api.run_instance(
                        self.slot_itype, pool.zone, Market.ON_DEMAND),
                    "start_on_demand_instance")
                host = HostVM(self.env, instance, self.slot_itype, slots=1)
                od_pool.add_host(host)
            host.hypervisor.reserve_slot()
            return host, False
        host = HostVM(self.env, instance, self.slot_itype,
                      slots=self._slots_per_host(pool.itype))
        host.hypervisor.reserve_slot()
        pool.add_host(host)
        self.env.process(self._watch_spot_host(host, pool))
        return host, True

    def _wire_networking(self, vm, customer, host):
        subnet = customer.subnets.get(host.zone.name)
        if subnet is None:
            subnet = self.api.vpc.create_subnet(host.zone)
            customer.subnets[host.zone.name] = subnet
        eni = self.api.create_interface(subnet)
        # Recorded on the VM before the attach so a mid-flight failure
        # leaves something for _unwire to release.
        vm.eni = eni
        yield from self._api_retry(
            lambda: self.api.attach_interface(eni, host.instance),
            "attach_network_interface")
        vm.private_ip = self.api.vpc.assign_private_ip(eni)

    def _attach_storage(self, vm, host):
        volume = self.api.create_volume(
            size_gib=max(int(vm.itype.memory_gib * 2), 8), zone=host.zone)
        vm.volume = volume
        yield from self._api_retry(
            lambda: self.api.attach_volume(volume, host.instance),
            "attach_volume")

    # -- backup management ---------------------------------------------------

    def _assign_backup(self, vm):
        """Give a spot-hosted VM its backup server, unless exempt.

        Idempotent: a VM that is already protected keeps its server.
        """
        if self.config.live_migration_only or \
                vm.backup_assignment is not None:
            return
        warning = self.api.marketplace.warning_period
        if self.migrations.live_fits_warning(vm.memory, warning):
            return  # Small-VM exception: live migration suffices.
        backup = self.backup_pool.assign(
            vm.id, vm.checkpoint_stream.stream_rate_bps(),
            cap=self.config.vms_per_backup)
        vm.backup_assignment = backup
        backup.store.open_image(vm.id, vm.memory.total_bytes)
        backup.store.seed_full_image(vm.id)
        if self.config.steady_checkpoint_flush:
            self.migrations.steady_flush_join(vm, backup)

    def on_demand_pool_for(self, vm):
        """The on-demand pool revoked VMs of ``vm`` fail over to.

        Failover stays within the VM's zone: its network volume is
        zone-locked, so the destination must be able to attach it.
        """
        zone = self.zone
        if vm.volume is not None:
            zone = vm.volume.zone
        elif vm.host is not None:
            zone = vm.host.zone
        return self.pools.on_demand_pool(self.slot_itype.name, zone.name)

    def release_backup(self, vm):
        backup = vm.backup_assignment
        if backup is None:
            return
        self.migrations.steady_flush_leave(vm.id)
        self.backup_pool.release(vm.id, backup)
        backup.store.close_image(vm.id)
        vm.backup_assignment = None

    def _provision_backup_server(self):
        server = BackupServer(self.env, self.config.backup_spec)
        server.store = CheckpointStore(self.env)
        return server

    def fail_backup_server(self, server):
        """Failure injection: a backup server (and its images) dies.

        Every VM it protected is re-assigned to a healthy (or freshly
        provisioned) backup server and re-seeded from its own live
        memory.  Until the new full copy completes, the VM is exposed:
        a revocation in that window falls back to an in-warning live
        migration, which risks (but does not necessarily cause) state
        loss — the invariant "no state loss" holds again as soon as the
        re-seed lands.
        """
        server.mark_failed()
        self.backup_failures += 1
        obs = self.env.obs
        if obs is not None:
            obs.emit("backup.server_failed", server=server.id,
                     protected_vms=len(server.streams))
            obs.metrics.counter("backup_server_failures_total").inc()
        victims = [vm for vm in self.all_vms()
                   if vm.backup_assignment is server]
        for vm in victims:
            self.backup_pool.release(vm.id, server)
            vm.backup_assignment = None
            if vm.is_running and vm.host is not None and \
                    vm.host.instance.is_spot:
                # Reassign immediately; the fresh full copy streams in
                # the background and completes after transfer time.
                backup = self.backup_pool.assign(
                    vm.id, vm.checkpoint_stream.stream_rate_bps(),
                    cap=self.config.vms_per_backup)
                vm.backup_assignment = backup
                backup.store.open_image(vm.id, vm.memory.total_bytes)
                self.env.process(self._reseed(vm, backup))
        return victims

    def _reseed(self, vm, backup):
        """Stream a fresh full image to the replacement backup server."""
        reseed_rate = self.config.mechanism.checkpoint.stream_bandwidth_bps
        yield self.env.timeout(vm.memory.total_bytes / reseed_rate)
        if vm.backup_assignment is backup and vm.id in backup.store:
            backup.store.seed_full_image(vm.id)

    # -- revocation handling ---------------------------------------------------

    def _watch_spot_host(self, host, pool):
        deadline = yield host.instance.termination_notice
        vms = list(host.vms)
        storm = self._storm_for(pool)
        storm.add_host(host, vms)
        # Let every same-instant warning register before sizing the storm.
        yield self.env.timeout(0)
        if storm.finalize_once():
            pool.record_revocation(storm.when, len(storm.hosts),
                                   len(storm.vms))
            self.ledger.record_revocation(
                pool_key=pool.key, hosts_lost=len(storm.hosts),
                vms_displaced=len(storm.vms), backup_load=storm.backup_load)
            if self.on_storm is not None:
                self.on_storm(pool, storm)
            obs = self.env.obs
            if obs is not None:
                obs.emit("storm.finalized",
                         pool="/".join(map(str, pool.key)),
                         hosts_lost=len(storm.hosts),
                         vms_displaced=len(storm.vms),
                         backup_servers=len(storm.backup_load))
                obs.metrics.counter(
                    "revocation_storms_total",
                    pool="/".join(map(str, pool.key))).inc()
                obs.metrics.histogram(
                    "storm_vms_displaced").observe(len(storm.vms))
        for vm in vms:
            self.migrations.migrate_on_revocation(
                vm, host, deadline, pool, storm=storm)
        # The doomed host stays in the pool (unplaceable, still
        # draining) until the platform actually terminates it.
        yield host.instance.terminated
        pool.remove_host(host)

    def _storm_for(self, pool):
        key = (pool.key, self.env.now)
        storm = self._storms.get(key)
        if storm is None:
            storm = _Storm(pool.key, self.env.now)
            self._storms[key] = storm
        return storm

    # -- pool dynamics: parking, returns, proactive moves ------------------

    def note_parked(self, vm, home_pool, dest_kind):
        """A VM landed on the on-demand side (or a staging slot)."""
        self._parked[vm.id] = (vm, home_pool)
        obs = self.env.obs
        if obs is not None:
            obs.emit("vm.parked", vm=vm.id, dest_kind=dest_kind,
                     home_pool="/".join(map(str, home_pool.key)))
            obs.metrics.gauge("parked_vms").set(len(self._parked))
        self._rearm_market(home_pool)
        if dest_kind == "staging":
            self.env.process(self._rebalance_from_staging(vm))

    def _rebalance_from_staging(self, vm):
        """Move a staged VM to a real on-demand host ("this strategy
        doubles the number of migrations")."""
        zone = vm.volume.zone if vm.volume is not None else self.zone
        try:
            instance = yield from self._api_retry(
                lambda: self.api.run_instance(
                    vm.itype, zone, Market.ON_DEMAND),
                "start_on_demand_instance")
        except (CapacityError, ApiError) as exc:
            if isinstance(exc, ApiError):
                self._note_degraded("rebalance.start", exc)
            return  # Stay staged; the return-to-spot path will move it.
        od_pool = self.pools.on_demand_pool(
            self.slot_itype.name, zone.name)
        host = HostVM(self.env, instance, self.slot_itype, slots=1)
        host.hypervisor.reserve_slot()
        od_pool.add_host(host)
        source_host = vm.host
        moved = yield self.migrations.live_migrate(
            vm, source_host, cause="rebalance", dest_host=host)
        if moved is None:
            host.hypervisor.cancel_reservation()
            self._gc_host_if_empty(host)
        self._gc_host_if_empty(source_host)

    def _on_price_change(self, pool, price):
        """Step-listener tier: fed every price point (predictive runs)."""
        pool.record_price(self.env.now, price)
        od_price = pool.itype.on_demand_price
        if self.config.proactive_migration and od_price < price <= pool.bid:
            self._maybe_proactive_drain(pool, price)
        if self.predictor is not None and pool.vm_count > 0 and \
                pool.key not in self._draining_pools and \
                self.predictor.observe(pool.key, self.env.now, price,
                                       pool.bid):
            self._draining_pools.add(pool.key)
            self._note_pool_move(pool, "pool.drain", cause="predictive",
                                 price=price)
            self.env.process(self._proactive_drain(pool, cause="predictive"))
        if self.config.return_to_spot and price <= od_price:
            self._maybe_return_to_spot(pool, price)

    def _maybe_proactive_drain(self, pool, price):
        """Crossing-tier trigger: the price entered (od, bid]."""
        if pool.key in self._draining_pools or pool.vm_count <= 0:
            return
        self._draining_pools.add(pool.key)
        self._note_pool_move(pool, "pool.drain", cause="proactive",
                             price=price)
        self.env.process(self._proactive_drain(pool))

    def _maybe_return_to_spot(self, pool, price):
        """Crossing-tier trigger: the price recovered below on-demand."""
        if pool.key in self._returning_pools or \
                not self._parked_vms_of(pool):
            return
        self._returning_pools.add(pool.key)
        self._note_pool_move(pool, "pool.return_to_spot",
                             cause="price-recovery", price=price)
        self.env.process(self._return_to_spot(pool))

    def _note_pool_move(self, pool, event_name, cause, price):
        """Publish the start of a pool-wide drain or return."""
        obs = self.env.obs
        if obs is None:
            return
        obs.emit(event_name, pool="/".join(map(str, pool.key)),
                 cause=cause, price=price, vms=pool.vm_count)
        obs.metrics.counter("pool_moves_total", kind=event_name,
                            cause=cause).inc()

    def _parked_vms_of(self, pool):
        return [vm for vm, home in self._parked.values() if home is pool]

    def is_parked(self, vm):
        """Whether ``vm`` currently lives on the on-demand side."""
        return vm.id in self._parked

    def spot_residents(self, customer):
        """``(vm, pool)`` for the customer's spot-hosted running VMs.

        Parked VMs are excluded — they belong to the return-to-spot
        path, not to portfolio rebalancing.
        """
        residents = []
        for vm in customer.vms:
            if not vm.is_running or vm.id in self._parked:
                continue
            host = vm.host
            if host is None:
                continue
            pool = self.pools.pool_of_host(host)
            if pool is not None and pool.market_kind == "spot":
                residents.append((vm, pool))
        return residents

    def estimate_rebalance_seconds(self):
        """Planning estimate: live-migration duration of one slot VM."""
        bits = self.slot_itype.memory_gib * 8 * 2 ** 30
        return bits / self.config.live_migration_bps

    def execute_rebalance(self, moves):
        """Process: live-migrate ``[(vm, dest_pool), ...]`` toward a
        portfolio policy's new weights."""
        return self.env.process(self._rebalance_spot_flow(moves))

    def _rebalance_spot_flow(self, moves):
        """Carry out planned portfolio moves, one bounded flow.

        Each move mirrors the return-to-spot mechanics: a destination
        slot is reserved (reusing free slots before launching a fresh
        spot host), the VM live-migrates, and emptied source hosts are
        garbage-collected.  A move whose VM meanwhile parked, died, or
        already sits in the destination pool is skipped; a platform
        refusal abandons the remaining moves — the next crossing
        replans from current state.
        """
        obs = self.env.obs
        if obs is not None:
            obs.emit("pool.rebalance", moves=len(moves))
            obs.metrics.counter("pool_moves_total", kind="pool.rebalance",
                                cause="portfolio").inc()
        for vm, dest_pool in moves:
            if not vm.is_running or vm.id in self._parked:
                continue
            source_host = vm.host
            if source_host is None or \
                    self.pools.pool_of_host(source_host) is dest_pool:
                continue
            host = dest_pool.host_with_free_slot()
            if host is None:
                try:
                    instance = yield from self._api_retry(
                        lambda: self.api.run_instance(
                            dest_pool.itype, dest_pool.zone, Market.SPOT,
                            bid=dest_pool.bid),
                        "start_spot_instance")
                except (BidTooLow, CapacityError, ApiError) as exc:
                    self._note_degraded("rebalance.start_spot", exc)
                    return
                host = HostVM(self.env, instance, self.slot_itype,
                              slots=self._slots_per_host(dest_pool.itype))
                dest_pool.add_host(host)
                self.env.process(self._watch_spot_host(host, dest_pool))
            host.hypervisor.reserve_slot()
            moved = yield self.migrations.live_migrate(
                vm, source_host, cause="rebalance", dest_host=host)
            if moved is None:
                host.hypervisor.cancel_reservation()
                self._gc_host_if_empty(host)
                continue
            self._assign_backup(vm)
            self.migrations.chase_if_doomed(vm, host)
            self._gc_host_if_empty(source_host)

    def _proactive_drain(self, pool, cause="proactive"):
        """Live-migrate a pool to on-demand ahead of a revocation.

        All of the pool's VMs drain concurrently — a sequential drain
        could not beat an onset ramp to the bid crossing.  VMs whose
        drain loses the race are caught by the normal warning path
        (they are busy-locked, so the flows never collide).
        """
        try:
            drains = []
            for host in list(pool.hosts):
                for vm in list(host.vms):
                    if not vm.is_running:
                        continue
                    drains.append((vm, self.migrations.live_migrate(
                        vm, host, cause=cause, exclude_pool=pool)))
            for vm, drain in drains:
                moved = yield drain
                if moved is None:
                    continue
                self.release_backup(vm)
                self.note_parked(vm, pool, "pool")
            if pool.market.current_price() > pool.bid:
                return  # Too late: the warning path takes over.
            for host in list(pool.hosts):
                if host.vms:
                    continue
                pool.remove_host(host)
                if host.instance.is_running:
                    self._terminate_host(host.instance, "drain.terminate")
        finally:
            self._draining_pools.discard(pool.key)

    def _return_to_spot(self, pool):
        """After the hold-down, bring parked VMs home to the spot pool."""
        try:
            yield self.env.timeout(self.config.return_holddown_s)
            od_price = pool.itype.on_demand_price
            if pool.market.current_price() > od_price:
                return  # The dip did not last.
            for vm in self._parked_vms_of(pool):
                if not vm.is_running:
                    continue
                host = pool.host_with_free_slot()
                if host is None:
                    try:
                        instance = yield from self._api_retry(
                            lambda: self.api.run_instance(
                                pool.itype, pool.zone, Market.SPOT,
                                bid=pool.bid),
                            "start_spot_instance")
                    except (BidTooLow, CapacityError, ApiError):
                        return
                    host = HostVM(self.env, instance, self.slot_itype,
                                  slots=self._slots_per_host(pool.itype))
                    pool.add_host(host)
                    self.env.process(self._watch_spot_host(host, pool))
                host.hypervisor.reserve_slot()
                source_host = vm.host
                moved = yield self.migrations.live_migrate(
                    vm, source_host, cause="return-to-spot", dest_host=host)
                if moved is None:
                    host.hypervisor.cancel_reservation()
                    continue
                self._parked.pop(vm.id, None)
                # The return migration just streamed the VM's full
                # state; the backup server tees that stream, so the
                # image is complete the moment the VM lands — there is
                # no unprotected window on arrival.
                self._assign_backup(vm)
                self.migrations.chase_if_doomed(vm, host)
                self._gc_host_if_empty(source_host)
                if pool.market.current_price() > od_price:
                    return
        finally:
            self._returning_pools.discard(pool.key)
            # VMs may still be parked (the dip did not last, or a
            # mid-return launch failed): reopen the recovery watch.
            self._rearm_market(pool)

    def _gc_host_if_empty(self, host):
        """Relinquish an emptied on-demand host (not hot spares)."""
        if host.vms or host in self.spares.spares:
            return
        pool = self.pools.pool_of_host(host)
        if pool is None or pool.market_kind != "on-demand":
            return
        pool.remove_host(host)
        if host.instance.is_running:
            self._terminate_host(host.instance, "host.gc")

    def _terminate_host(self, instance, path):
        """Supervised fire-and-forget terminate.

        An unwaited process that fails crashes the simulation kernel,
        so every background terminate runs under this wrapper: retries
        per policy, then gives the host up (the platform's revocation
        machinery or billing finalization reaps it) rather than die.
        """
        def _body():
            try:
                yield from self._api_retry(
                    lambda: self.api.terminate_instance(instance),
                    "terminate_instance")
            except (ApiError, InvalidOperation) as exc:
                self._note_degraded(path, exc)
        return self.env.process(_body())

    # -- hot spares -------------------------------------------------------

    def _kick_spares(self):
        """Deficit-edge hook: wake the sleeping replenisher."""
        wakeup = self._spares_wakeup
        if wakeup is not None and not wakeup.triggered:
            wakeup.succeed()

    def _replenish_spares(self):
        """Keep the hot-spare reserve at its target size.

        Condition-driven: after filling the reserve the process sleeps
        on a bare event that only deficit transition edges (a spare
        taken via ``HotSparePolicy.on_deficit``) or finalization
        succeed, so an at-target reserve costs zero kernel events no
        matter how long the run — the old 60 s poll survives only as a
        retry backoff after the platform refused capacity.  Finalize
        wakes the process too, so a drained controller goes quiet
        immediately instead of leaking one last poll wakeup.
        """
        od_pool = self.pools.on_demand_pool(
            self.slot_itype.name, self.zone.name)
        while not self._finalized:
            refused = False
            while self.spares.deficit > 0 and not self._finalized:
                try:
                    instance = yield from self._api_retry(
                        lambda: self.api.run_instance(
                            self.slot_itype, self.zone, Market.ON_DEMAND),
                        "start_on_demand_instance")
                except (CapacityError, ApiError):
                    refused = True
                    break
                host = HostVM(self.env, instance, self.slot_itype, slots=1)
                od_pool.add_host(host)
                self.spares.add_spare(host)
                self._spares_stats["provisioned"] += 1
            if self._finalized:
                break
            self._spares_wakeup = wakeup = self.env.event()
            if refused:
                # Capacity backoff: retry on the legacy 60 s cadence,
                # but let a deficit edge or finalize cut it short.
                yield self.env.any_of([wakeup, self.env.timeout(60.0)])
                self._spares_stats["polls"] += 1
            else:
                yield wakeup
                self._spares_stats["wakes"] += 1
            self._spares_wakeup = None

    def spares_drive_stats(self):
        """Replenisher wakeup counters (the fleet bench's elision proof)."""
        stats = dict(self._spares_stats)
        stats["consumed"] = self.spares.consumed
        stats["replenished"] = self.spares.replenished
        return stats

    # -- relinquish -------------------------------------------------------

    def _relinquish_flow(self, vm):
        self.release_backup(vm)
        self._parked.pop(vm.id, None)
        if vm.customer is not None:
            vm.customer.remove_vm(vm)
        host = vm.host
        vm.set_state(VMState.TERMINATED)
        self.ledger.vm_terminated(vm)
        obs = self.env.obs
        if obs is not None:
            obs.emit("vm.terminated", vm=vm.id)
            obs.metrics.counter("vms_terminated_total").inc()
        if host is not None:
            host.hypervisor.evict(vm)
        if vm.eni is not None and vm.eni.is_attached:
            try:
                yield from self._api_retry(
                    lambda: self.api.detach_interface(vm.eni),
                    "detach_network_interface")
            except ApiError as exc:
                # The ENI is orphaned, not leaked: a later forced host
                # termination releases it.
                self._note_degraded("relinquish.detach_interface", exc)
        if vm.volume is not None and vm.volume.attached_to is not None:
            try:
                yield from self._api_retry(
                    lambda: self.api.detach_volume(vm.volume),
                    "detach_volume")
            except ApiError as exc:
                self._note_degraded("relinquish.detach_volume", exc)
            if vm.volume.attached_to is None:
                vm.volume.delete()
        if host is not None and not host.vms and \
                host not in self.spares.spares:
            pool = self.pools.pool_of_host(host)
            if pool is not None:
                pool.remove_host(host)
            if host.instance.is_running:
                try:
                    yield from self._api_retry(
                        lambda: self.api.terminate_instance(host.instance),
                        "terminate_instance")
                except (ApiError, InvalidOperation) as exc:
                    self._note_degraded("relinquish.terminate", exc)
        return vm

    # -- reporting -------------------------------------------------------

    def finalize(self):
        """Close the books: backup-server and lifetime accounting."""
        if self._finalized:
            return
        self._finalized = True
        self._kick_spares()
        self.migrations.settle_steady_flush()
        if self.traffic is not None:
            self.traffic.finalize()
        for server in self.backup_pool.servers:
            end = server.failed_at if server.failed else self.env.now
            hours = (end - server.created_at) / 3600.0
            self.ledger.add_cost(
                f"backup:{server.id}", hours * server.spec.hourly_price)
        self.ledger.finalize()

    def summary(self, total_vms=None):
        """Cost/availability/storm report (see AccountingLedger)."""
        return self.ledger.summary(self.api, total_vms=total_vms)

    def all_vms(self):
        return [vm for customer in self.customers.values()
                for vm in customer.vms]
