"""Tests for state snapshots and the invariant checker."""

import json

import pytest

from repro.core.config import SpotCheckConfig
from repro.core.inspection import (
    check_invariants,
    save_snapshot,
    state_snapshot,
)

from tests.core.test_controller import (
    SPIKE_END,
    SPIKE_START,
    build,
    launch_fleet,
)


class TestSnapshot:
    def test_snapshot_is_json_serializable(self):
        env, api, controller = build()
        launch_fleet(env, controller, count=2)
        snapshot = state_snapshot(controller)
        text = json.dumps(snapshot)
        assert "pools" in snapshot and "customers" in snapshot
        assert len(json.loads(text)["customers"][0]["vms"]) == 2

    def test_snapshot_tracks_vm_location(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        before = state_snapshot(controller)
        env.run(until=SPIKE_START + 600.0)
        after = state_snapshot(controller)
        vm_before = before["customers"][0]["vms"][0]
        vm_after = after["customers"][0]["vms"][0]
        assert vm_before["host"] != vm_after["host"]
        assert vm_before["private_ip"] == vm_after["private_ip"]
        assert vm_after["backup"] is None  # parked on-demand, no backup

    def test_save_snapshot(self, tmp_path):
        env, api, controller = build()
        launch_fleet(env, controller, count=1)
        path = tmp_path / "state.json"
        save_snapshot(controller, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["time_s"] == env.now

    def test_json_round_trip_preserves_key_invariants(self):
        env, api, controller = build()
        vms = launch_fleet(env, controller, count=3)
        snapshot = json.loads(json.dumps(state_snapshot(controller)))
        # Every launched VM appears exactly once across customers.
        snapshot_vms = [vm for customer in snapshot["customers"]
                        for vm in customer["vms"]]
        assert sorted(vm["id"] for vm in snapshot_vms) == \
            sorted(vm.id for vm in vms)
        # Each running VM's host is a host some pool knows about, and
        # that host lists the VM.
        hosts = {host["instance"]: host for pool in snapshot["pools"]
                 for host in pool["hosts"]}
        for vm in snapshot_vms:
            if vm["state"] == "running":
                assert vm["host"] in hosts
                assert vm["id"] in hosts[vm["host"]]["vms"]
        # Backup references resolve to real backup servers that agree.
        servers = {server["id"]: server
                   for server in snapshot["backup_servers"]}
        for vm in snapshot_vms:
            if vm["backup"] is not None:
                assert vm["id"] in servers[vm["backup"]]["assigned_vms"]
        # Slot accounting survives the round trip.
        for pool in snapshot["pools"]:
            for host in pool["hosts"]:
                assert len(host["vms"]) <= host["slots"]


class TestInvariants:
    def test_fresh_controller_has_no_violations(self):
        # A controller with pools installed but no VMs yet is already
        # consistent — the checker must not demand activity.
        env, api, controller = build()
        assert check_invariants(controller) == []

    def test_clean_controller_has_no_violations(self):
        env, api, controller = build()
        launch_fleet(env, controller, count=3)
        assert check_invariants(controller) == []

    def test_invariants_hold_through_revocation_cycle(self):
        env, api, controller = build()
        launch_fleet(env, controller, count=3)
        for when in (SPIKE_START + 300.0, SPIKE_END + 2000.0,
                     SPIKE_END + 50000.0):
            env.run(until=when)
            assert check_invariants(controller) == [], f"at t={when}"

    def test_detects_overcommit(self):
        env, api, controller = build()
        [vm] = launch_fleet(env, controller, count=1)
        vm.host.hypervisor.reserved = 5  # corrupt on purpose
        violations = check_invariants(controller)
        assert any("overcommitted" in v for v in violations)

    def test_detects_duplicate_ip(self):
        env, api, controller = build()
        vms = launch_fleet(env, controller, count=2)
        vms[1].private_ip = vms[0].private_ip  # corrupt on purpose
        violations = check_invariants(controller)
        assert any("share IP" in v for v in violations)

    def test_detects_broken_backup_link(self):
        env, api, controller = build()
        [vm] = launch_fleet(env, controller, count=1)
        vm.backup_assignment.streams.pop(vm.id)  # corrupt on purpose
        violations = check_invariants(controller)
        assert any("does not know it" in v for v in violations)

    def test_detects_detached_volume(self):
        env, api, controller = build()
        [vm] = launch_fleet(env, controller, count=1)
        vm.volume._force_detach()  # corrupt on purpose
        violations = check_invariants(controller)
        assert any("volume" in v for v in violations)
