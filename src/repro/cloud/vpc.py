"""Virtual private cloud: subnets, network interfaces, private IPs.

SpotCheck places all of its native servers in one VPC so it can assign
each nested VM its own private IP, and — on migration — deallocate the
IP from an interface on the source host and reassign it to an unused
interface on the destination host, keeping the nested VM's address (and
therefore its TCP connections) intact.
"""

import ipaddress
from itertools import count

from repro.cloud.errors import InvalidOperation, NotFound

_ENI_IDS = count(1)
_VPC_IDS = count(1)


class NetworkInterface:
    """An elastic network interface (ENI) with assignable private IPs."""

    def __init__(self, env, subnet):
        self.env = env
        self.id = f"eni-{next(_ENI_IDS):08x}"
        self.subnet = subnet
        self.attached_to = None
        self.private_ips = set()

    @property
    def is_attached(self):
        return self.attached_to is not None

    def _attach(self, instance):
        if self.is_attached:
            raise InvalidOperation(f"{self.id} already attached")
        self.attached_to = instance
        instance.interfaces.append(self)

    def _detach(self):
        if not self.is_attached:
            raise InvalidOperation(f"{self.id} is not attached")
        if self in self.attached_to.interfaces:
            self.attached_to.interfaces.remove(self)
        self.attached_to = None

    def __repr__(self):
        state = f"on {self.attached_to.id}" if self.is_attached else "detached"
        return f"<ENI {self.id} {state} ips={sorted(map(str, self.private_ips))}>"


class Subnet:
    """A subnet of the VPC tied to one availability zone.

    SpotCheck "allocates a subnet within a shared data plane ... to each
    customer"; the VPC hands out one subnet per (customer, zone).
    """

    def __init__(self, cidr, zone):
        self.network = ipaddress.ip_network(cidr)
        self.zone = zone
        self._hosts = self.network.hosts()
        self._released = []
        self.allocated = set()

    def allocate_ip(self):
        """Allocate the next free private IP in this subnet."""
        if self._released:
            ip = self._released.pop()
        else:
            try:
                ip = next(self._hosts)
            except StopIteration:
                raise InvalidOperation(
                    f"subnet {self.network} exhausted") from None
        self.allocated.add(ip)
        return ip

    def release_ip(self, ip):
        if ip not in self.allocated:
            raise NotFound(f"{ip} not allocated in {self.network}")
        self.allocated.remove(ip)
        self._released.append(ip)


class Vpc:
    """A virtual private cloud spanning a region's zones."""

    def __init__(self, env, region, cidr="10.0.0.0/16"):
        self.env = env
        self.id = f"vpc-{next(_VPC_IDS):08x}"
        self.region = region
        self.network = ipaddress.ip_network(cidr)
        self._subnet_blocks = self.network.subnets(new_prefix=24)
        self.subnets = []
        self.interfaces = {}

    def create_subnet(self, zone):
        """Carve the next /24 out of the VPC block for ``zone``."""
        try:
            block = next(self._subnet_blocks)
        except StopIteration:
            raise InvalidOperation(f"VPC {self.network} out of subnets") from None
        subnet = Subnet(str(block), zone)
        self.subnets.append(subnet)
        return subnet

    def create_interface(self, subnet):
        """Create a detached ENI in ``subnet``."""
        eni = NetworkInterface(self.env, subnet)
        self.interfaces[eni.id] = eni
        return eni

    def interface(self, eni_id):
        try:
            return self.interfaces[eni_id]
        except KeyError:
            raise NotFound(f"no interface {eni_id!r}") from None

    def assign_private_ip(self, eni, ip=None):
        """Assign ``ip`` (or a fresh subnet IP) to the interface."""
        if ip is None:
            ip = eni.subnet.allocate_ip()
        else:
            ip = ipaddress.ip_address(ip)
            if ip not in eni.subnet.network:
                raise InvalidOperation(
                    f"{ip} is outside subnet {eni.subnet.network}")
            if ip not in eni.subnet.allocated:
                eni.subnet.allocated.add(ip)
        eni.private_ips.add(ip)
        return ip

    def unassign_private_ip(self, eni, ip):
        """Remove ``ip`` from the interface, keeping it reserved.

        The address stays allocated in the subnet so SpotCheck can move
        it to another interface without racing other allocations.
        """
        ip = ipaddress.ip_address(ip)
        if ip not in eni.private_ips:
            raise NotFound(f"{ip} not assigned to {eni.id}")
        eni.private_ips.remove(ip)

    def move_private_ip(self, ip, source_eni, dest_eni):
        """Reassign ``ip`` from one interface to another (migration path)."""
        self.unassign_private_ip(source_eni, ip)
        return self.assign_private_ip(dest_eni, ip)
