"""The backup-server resource model."""

from dataclasses import dataclass
from itertools import count

from repro.sim.resources import Container, FairShareResource, fair_share_rates


class BackupUnavailable(RuntimeError):
    """Restore or commit work was sent to a failed backup server."""


@dataclass(frozen=True)
class BackupServerSpec:
    """Capacity model of one backup server (m3.xlarge by default).

    The write-path numbers reflect the paper's ext4 tuning (write-back
    journalling, ``noatime``, high ``dirty_ratio``): the page cache
    absorbs write bursts, so the sustained write path is close to the
    device limit.  The read-path numbers express the three regimes of
    Figure 8: tuned sequential reads (optimized full restore), untuned
    reads (unoptimized full restore), and random demand-paged reads
    whose aggregate throughput collapses under concurrency unless the
    ``fadvise`` hints are issued.

    Attributes
    ----------
    itype_name:
        Native type used for backup servers.
    hourly_price:
        On-demand price of the backup server ($0.28 for m3.xlarge).
    net_bps:
        NIC bandwidth (bytes/s).
    disk_write_bps:
        Sustained checkpoint-ingest bandwidth (bytes/s).
    seq_read_bps:
        Sequential image-read bandwidth with readahead hints.
    untuned_read_factor:
        Fraction of ``seq_read_bps`` achieved without the hints.
    rand_read_bps:
        Aggregate random-read bandwidth at concurrency 1 (page faults
        during lazy restore).
    rand_interference:
        Quadratic seek-interference coefficient: aggregate random
        throughput at concurrency n is ``rand_read_bps / (1 + c(n-1)^2)``.
    fadvise_rand_read_bps:
        Aggregate demand-paging bandwidth when the RANDOM ``fadvise``
        hint plus background prefetch is enabled (flat in n).
    max_checkpoint_vms:
        Assignment cap SpotCheck enforces per backup server ("assigns
        at most 35-40 VMs per backup server").
    page_cache_bytes:
        Page cache available to absorb write storms.
    """

    itype_name: str = "m3.xlarge"
    hourly_price: float = 0.28
    net_bps: float = 125e6
    disk_write_bps: float = 110e6
    seq_read_bps: float = 90e6
    untuned_read_factor: float = 0.55
    rand_read_bps: float = 45e6
    rand_interference: float = 0.02
    fadvise_rand_read_bps: float = 70e6
    max_checkpoint_vms: int = 40
    page_cache_bytes: float = 8 * 1024 ** 3

    def __post_init__(self):
        if self.net_bps <= 0 or self.disk_write_bps <= 0:
            raise ValueError("bandwidths must be positive")
        if not 0 < self.untuned_read_factor <= 1:
            raise ValueError("untuned_read_factor must lie in (0, 1]")
        if self.max_checkpoint_vms < 1:
            raise ValueError("max_checkpoint_vms must be at least 1")

    @property
    def write_path_bps(self):
        """Sustained checkpoint-ingest capacity (network or disk bound)."""
        return min(self.net_bps, self.disk_write_bps)

    def full_restore_aggregate_bps(self, optimized):
        """Aggregate sequential read throughput for full restores."""
        rate = self.seq_read_bps if optimized \
            else self.seq_read_bps * self.untuned_read_factor
        return min(rate, self.net_bps)

    def lazy_restore_aggregate_bps(self, concurrent, optimized):
        """Aggregate demand-paging throughput at ``concurrent`` restores."""
        if concurrent < 1:
            raise ValueError("concurrency must be at least 1")
        if optimized:
            rate = self.fadvise_rand_read_bps
        else:
            rate = self.rand_read_bps / (
                1.0 + self.rand_interference * (concurrent - 1) ** 2)
        return min(rate, self.net_bps)

    def amortized_cost_per_vm(self, vms):
        """Backup cost share per nested VM ($/hour)."""
        if vms < 1:
            raise ValueError("need at least one VM")
        return self.hourly_price / vms


class _RestoreToken:
    """Handle for one restore's stay on a server's read path.

    ``peak`` records the highest number of simultaneous restores the
    server saw at any point during this restore's lifetime — the
    concurrency the availability accounting attributes to it.
    """

    __slots__ = ("peak",)

    def __init__(self, concurrent_now):
        self.peak = concurrent_now


class _BackupIngest:
    """``FairShareLink``-compatible facade over a server's commit path.

    Checkpoint streams call ``transfer(size, rate_cap=...)``; each call
    becomes a commit flow on the server's shared datapath, so steady
    flushes contend with final commits and restores for real.
    """

    def __init__(self, server):
        self.server = server

    def transfer(self, size_bytes, rate_cap=None):
        return self.server.commit_flow(size_bytes, rate_cap=rate_cap)


class BackupServer:
    """One backup server: assigned checkpoint streams + restore load.

    Used analytically by the figure benches (utilization, degradation)
    and as a stateful entity by the controller (assignment bookkeeping,
    storm accounting).  All byte movement — checkpoint commits,
    skeleton transfers, full/lazy restore reads — runs as flows on one
    shared :class:`~repro.sim.resources.FairShareResource` whose two
    paths model the disk and the NIC, so overlapping storms and
    commit-vs-restore contention are simulated rather than approximated.
    """

    def __init__(self, env, spec=None):
        self.env = env
        self.spec = spec or BackupServerSpec()
        self.id = f"bak-{self._next_id(env):04d}"
        #: vm.id -> stream rate (bytes/s).
        self.streams = {}
        #: Restores in flight right now.
        self.active_restores = 0
        self._restore_tokens = []
        #: Disk occupancy for stored images.
        self.store_bytes = Container(env, capacity=float("inf"))
        self.created_at = env.now
        #: Set when the server dies (failure injection); a failed
        #: server accepts no assignments and serves no restores.
        self.failed_at = None
        #: The shared datapath.  Reads and writes meet on the "disk"
        #: path (whose aggregate depends on the traffic mix, see
        #: :meth:`_disk_capacity_bps`); everything also crosses the
        #: "nic" path, which caps any regime at the NIC rate.
        self.datapath = FairShareResource(
            env,
            {"disk": self._disk_capacity_bps, "nic": self.spec.net_bps},
            on_rebalance=self._observe_datapath)
        #: Link-compatible handle checkpoint streams flush through.
        self.ingest = _BackupIngest(self)

    @staticmethod
    def _next_id(env):
        """Per-environment ID counter: scenario N's servers are named
        identically no matter how many simulations ran earlier in the
        process."""
        counter = getattr(env, "_backup_server_ids", None)
        if counter is None:
            counter = count(1)
            env._backup_server_ids = counter
        return next(counter)

    @property
    def failed(self):
        return self.failed_at is not None

    def mark_failed(self):
        """The server (and the images it held) are gone."""
        if self.failed_at is None:
            self.failed_at = self.env.now

    def _require_alive(self):
        if self.failed:
            raise BackupUnavailable(
                f"{self.id} failed at t={self.failed_at:.1f}; "
                f"its images are gone")

    # -- checkpoint write path -------------------------------------------

    @property
    def assigned_vms(self):
        return len(self.streams)

    @property
    def has_capacity(self):
        return self.assigned_vms < self.spec.max_checkpoint_vms

    def assign_stream(self, vm_id, rate_bps):
        """Register a nested VM's checkpoint stream."""
        if self.failed:
            raise ValueError(f"{self.id} has failed")
        if vm_id in self.streams:
            raise ValueError(f"{vm_id} already assigned to {self.id}")
        self.streams[vm_id] = float(rate_bps)
        self._observe_write_path("backup.stream_assigned", vm_id)

    def release_stream(self, vm_id):
        if self.streams.pop(vm_id, None) is not None:
            self._observe_write_path("backup.stream_released", vm_id)

    def _observe_write_path(self, event_name, vm_id):
        """Publish the stream change and the resulting write pressure.

        A ``backup.throttled`` event additionally marks the moment
        aggregate checkpoint demand exceeds the write path (the
        post-knee regime of Figure 7) — the per-VM streams are being
        throttled below their requested rates from here on.
        """
        obs = getattr(self.env, "obs", None)
        if obs is None:
            return
        utilization = self.write_utilization()
        obs.emit(event_name, server=self.id, vm=vm_id,
                 assigned=self.assigned_vms, utilization=utilization)
        obs.metrics.gauge(
            "backup_write_utilization", server=self.id).set(utilization)
        obs.metrics.gauge(
            "backup_assigned_vms", server=self.id).set(self.assigned_vms)
        if utilization > 1.0 and event_name == "backup.stream_assigned":
            obs.emit("backup.throttled", server=self.id,
                     utilization=utilization,
                     overload=self.overload_fraction())
            obs.metrics.counter("backup_throttle_events_total",
                                server=self.id).inc()

    def write_utilization(self):
        """Aggregate stream demand / write-path capacity."""
        return sum(self.streams.values()) / self.spec.write_path_bps

    def overload_fraction(self):
        """Fraction of checkpoint demand the write path cannot absorb.

        Positive once aggregate streams exceed capacity; drives the
        post-knee performance drop of Figure 7.
        """
        util = self.write_utilization()
        return max(0.0, 1.0 - 1.0 / util) if util > 0 else 0.0

    def stream_fair_rates(self):
        """Granted rate per assigned stream under max-min fair sharing.

        What each VM's checkpoint stream would sustain if all assigned
        streams pushed at their demand simultaneously — the fair-share
        view of Figure 7's write path.  Below the knee every stream
        receives its demand; past it the grants flatten at the equal
        share.
        """
        vm_ids = list(self.streams)
        grants = fair_share_rates(
            [self.streams[vm_id] for vm_id in vm_ids],
            self.spec.write_path_bps)
        return dict(zip(vm_ids, grants))

    def write_throttle_fraction(self):
        """Fraction of aggregate stream demand denied by fair sharing.

        Cross-check for :meth:`overload_fraction`: both derive the same
        post-knee throttling, one from the utilization ratio and one
        from the water-filled grants.
        """
        demand = sum(self.streams.values())
        if demand <= 0:
            return 0.0
        granted = sum(self.stream_fair_rates().values())
        return max(0.0, 1.0 - granted / demand)

    # -- datapath flows ---------------------------------------------------

    def commit_flow(self, nbytes, rate_cap=None):
        """Write ``nbytes`` of checkpoint state; returns the done event.

        Used both for steady-state flushes (capped at the per-VM stream
        throttle) and for final commits (uncapped: the VM is suspended,
        so the commit may burst to whatever share the datapath grants —
        in a full 40-VM storm that share is exactly the worst-case
        ``commit_bandwidth_bps`` the time bound was provisioned for).
        """
        self._require_alive()
        return self.datapath.transfer(nbytes, paths=("disk", "nic"),
                                      rate_cap=rate_cap, kind="commit")

    def skeleton_flow(self, nbytes):
        """Transfer a lazy restore's skeleton state (network only)."""
        self._require_alive()
        return self.datapath.transfer(nbytes, paths=("nic",),
                                      kind="skeleton")

    def restore_read_flow(self, image_bytes, kind, optimized):
        """Read a VM image for restoration; returns the done event.

        The flow crosses the disk read path (whose aggregate follows
        the Figure 8 regime for ``kind``/``optimized``) and the NIC.
        """
        self._require_alive()
        if kind not in ("full", "lazy"):
            raise ValueError(f"unknown restore kind {kind!r}")
        tag = f"restore:{kind}:{'opt' if optimized else 'unopt'}"
        return self.datapath.transfer(image_bytes, paths=("disk", "nic"),
                                      kind=tag)

    def begin_restore(self):
        """Enter the restore path; returns a token for :meth:`end_restore`.

        Every live token's ``peak`` is raised to the new concurrency, so
        a restore that spans several overlapping storms reports the
        worst sharing it experienced.
        """
        self._require_alive()
        self.active_restores += 1
        token = _RestoreToken(self.active_restores)
        self._restore_tokens.append(token)
        for live in self._restore_tokens:
            live.peak = max(live.peak, self.active_restores)
        return token

    def end_restore(self, token):
        self.active_restores -= 1
        self._restore_tokens.remove(token)

    def _disk_capacity_bps(self, flows):
        """Aggregate disk throughput for the current mix of disk flows.

        Writes alone sustain ``disk_write_bps``; reads alone sustain
        the Figure 8 aggregate of their regime; a mix is bound by the
        slowest regime present (the head seeks between the journal and
        the image files hurt both sides).  The NIC cap is *not* applied
        here — the datapath's "nic" path carries it — so homogeneous
        batches reproduce the spec's ``min(regime, net)/n`` analytic
        shares exactly.
        """
        caps = []
        reads = [f for f in flows
                 if f.kind is not None and f.kind.startswith("restore:")]
        if len(reads) < len(flows):
            caps.append(self.spec.disk_write_bps)
        if reads:
            caps.append(self._read_aggregate_bps(reads))
        return min(caps) if caps else self.spec.disk_write_bps

    def _read_aggregate_bps(self, reads):
        spec = self.spec
        kinds = {f.kind for f in reads}
        caps = []
        if "restore:full:opt" in kinds:
            caps.append(spec.seq_read_bps)
        if "restore:full:unopt" in kinds:
            caps.append(spec.seq_read_bps * spec.untuned_read_factor)
        if "restore:lazy:opt" in kinds:
            caps.append(spec.fadvise_rand_read_bps)
        if "restore:lazy:unopt" in kinds:
            concurrent = len(reads)
            caps.append(spec.rand_read_bps / (
                1.0 + spec.rand_interference * (concurrent - 1) ** 2))
        return min(caps)

    def _observe_datapath(self, datapath):
        obs = getattr(self.env, "obs", None)
        if obs is None:
            return
        obs.metrics.counter("backup_datapath_rebalances_total",
                            server=self.id).inc()
        obs.metrics.gauge("backup_datapath_flows", server=self.id).set(
            datapath.flow_count())
        for path, stats in datapath.snapshot().items():
            utilization = (stats["rate_sum"] / stats["capacity"]
                           if stats["capacity"] > 0 else 0.0)
            obs.metrics.gauge("backup_datapath_utilization",
                              server=self.id, path=path).set(utilization)

    # -- restore read path -------------------------------------------------

    def per_restore_bps(self, kind, optimized, concurrent=None):
        """Per-restore bandwidth for ``concurrent`` simultaneous restores.

        ``kind`` is ``"full"`` or ``"lazy"``.  Analytic counterpart of
        the datapath's equal split; the DES path must reproduce it for
        homogeneous batches.
        """
        self._require_alive()
        n = self.active_restores if concurrent is None else concurrent
        n = max(n, 1)
        if kind == "full":
            aggregate = self.spec.full_restore_aggregate_bps(optimized)
        elif kind == "lazy":
            aggregate = self.spec.lazy_restore_aggregate_bps(n, optimized)
        else:
            raise ValueError(f"unknown restore kind {kind!r}")
        return aggregate / n

    def __repr__(self):
        return (f"<BackupServer {self.id} vms={self.assigned_vms}"
                f"/{self.spec.max_checkpoint_vms} "
                f"restores={self.active_restores}>")
