"""``repro.obs`` — the simulation-time observability subsystem.

Four parts:

``repro.obs.bus``
    An event bus components publish structured, sim-timestamped events
    to (spot price crossings, revocation warnings, checkpoint rounds,
    pool rebids, backup stream throttling), with typed subscriptions
    and near-zero cost when nothing is listening.

``repro.obs.metrics``
    A metrics registry with counters, gauges, and streaming histograms
    (p50/p95/p99 via the P² algorithm, no sample storage) keyed by
    labeled names, e.g. ``migration_downtime_seconds{mechanism=...}``.

``repro.obs.trace``
    Span tracing: every migration becomes a trace of nested spans —
    warning → checkpoint ramp → VPC reassign → EBS detach/attach →
    restore → demand-page tail — reproducing Table 1's decomposition
    per migration.

``repro.obs.export``
    Exporters for JSONL event logs, Prometheus-style text metrics, and
    a human-readable trace tree, plus the ``--obs-dir`` writer.

Instrumentation is opt-in: the environment carries ``env.obs`` (default
``None``) and every instrumented component guards with a single
``is not None`` test, so an unobserved simulation pays nothing.
See ``docs/observability.md`` for the event taxonomy, metric names,
and span schema.
"""

from repro.obs.bus import EventBus, ObsEvent, Subscription
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "ObsEvent",
    "P2Quantile",
    "Span",
    "SpanTracer",
    "Subscription",
]


class Observability:
    """One simulation's bus + metrics + tracer, bound to its clock.

    Attach to an environment either at construction time
    (``Environment(obs=Observability())`` binds the clock) or later via
    :meth:`attach`.  With ``record_events=True`` (the default) every
    published event is also kept in :attr:`events` for the directory
    exporter; pass ``False`` and add a streaming
    :class:`~repro.obs.export.JsonlEventWriter` for unbounded runs.
    """

    def __init__(self, record_events=True):
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer()
        self.env = None
        self.events = [] if record_events else None
        if record_events:
            self.bus.subscribe("*", self.events.append)

    def attach(self, env):
        """Bind to ``env``: sets ``env.obs`` and the tracer clock."""
        self.env = env
        self.tracer.clock = lambda: env.now
        env.obs = self
        return self

    def now(self):
        if self.env is None:
            raise ValueError("observability is not attached to an "
                             "environment")
        return self.env.now

    def emit(self, name, /, **fields):
        """Publish an event stamped with the simulated time."""
        return self.bus.publish(name, self.now(), **fields)

    def write_dir(self, path):
        """Write events.jsonl / metrics.prom / traces.txt to ``path``."""
        from repro.obs.export import write_obs_dir
        return write_obs_dir(self, path)
