"""Test package."""
