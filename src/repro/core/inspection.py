"""Controller state inspection: snapshots and invariant checking.

The paper's controller "maintains a global and consistent view of
SpotCheck's state ... and stores this information in a database".
:func:`state_snapshot` produces that view as a JSON-serializable
document (for audits, dashboards, or post-mortems), and
:func:`check_invariants` verifies the consistency properties the
controller is supposed to maintain — the long-run integration tests
call it after every simulated storm.
"""

import json


def state_snapshot(controller):
    """A JSON-serializable dump of the controller's global state."""
    env = controller.env
    snapshot = {
        "time_s": env.now,
        "config": {
            "allocation_policy": controller.config.allocation_policy,
            "bid_policy": controller.config.bid_policy,
            "mechanism": controller.config.mechanism.restore_kind,
            "live_migration_only": controller.config.live_migration_only,
        },
        "pools": [],
        "customers": [],
        "backup_servers": [],
        "parked_vm_ids": sorted(controller._parked),
        "backup_failures": controller.backup_failures,
    }
    for pool in controller.pools.all_pools():
        snapshot["pools"].append({
            "key": list(pool.key),
            "bid": getattr(pool, "bid", None),
            "hosts": [{
                "instance": host.instance.id,
                "type": host.itype.name,
                "state": host.instance.state.value,
                "slots": host.hypervisor.slots,
                "vms": [vm.id for vm in host.vms],
            } for host in pool.hosts],
        })
    for customer in controller.customers.values():
        snapshot["customers"].append({
            "id": customer.id,
            "name": customer.name,
            "vms": [{
                "id": vm.id,
                "type": vm.itype.name,
                "state": vm.state.value,
                "host": vm.host.instance.id if vm.host else None,
                "private_ip": str(vm.private_ip) if vm.private_ip else None,
                "volume": vm.volume.id if vm.volume else None,
                "backup": vm.backup_assignment.id
                if vm.backup_assignment else None,
            } for vm in customer.vms],
        })
    for server in controller.backup_pool.servers:
        snapshot["backup_servers"].append({
            "id": server.id,
            "assigned_vms": sorted(server.streams),
            "failed": server.failed,
        })
    return snapshot


def save_snapshot(controller, path):
    """Write :func:`state_snapshot` to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(state_snapshot(controller), handle, indent=2)


def check_invariants(controller):
    """Verify the controller's consistency properties.

    Returns a list of human-readable violation strings (empty when the
    state is consistent).
    """
    violations = []
    vms = controller.all_vms()

    # 1. Every running VM sits in exactly one host's slot list.
    placements = {}
    for pool in controller.pools.all_pools():
        for host in pool.hosts:
            for vm in host.vms:
                placements.setdefault(vm.id, []).append(host)
    for vm in vms:
        hosts = placements.get(vm.id, [])
        if vm.is_running:
            if len(hosts) != 1:
                violations.append(
                    f"{vm.id} is running but placed on {len(hosts)} hosts")
            elif vm.host is not hosts[0]:
                violations.append(
                    f"{vm.id}.host disagrees with its pool placement")

    # 2. Slot accounting never exceeds capacity.
    for pool in controller.pools.all_pools():
        for host in pool.hosts:
            hv = host.hypervisor
            if len(hv.vms) + hv.reserved > hv.slots:
                violations.append(
                    f"{host.id} overcommitted: {len(hv.vms)} VMs + "
                    f"{hv.reserved} reserved > {hv.slots} slots")

    # 3. Running VMs never sit on terminated instances.
    for vm in vms:
        if vm.is_running and vm.host is not None and \
                not vm.host.instance.is_running:
            violations.append(
                f"{vm.id} runs on terminated {vm.host.instance.id}")

    # 4. Private IPs are unique across live VMs.
    seen_ips = {}
    for vm in vms:
        if vm.private_ip is None or not vm.is_running:
            continue
        if vm.private_ip in seen_ips:
            violations.append(
                f"{vm.id} and {seen_ips[vm.private_ip]} share IP "
                f"{vm.private_ip}")
        seen_ips[vm.private_ip] = vm.id

    # 5. Volumes of running VMs are attached to their current host.
    for vm in vms:
        if vm.state.value != "running" or vm.volume is None or \
                vm.host is None:
            continue
        if vm.volume.attached_to is not vm.host.instance:
            violations.append(
                f"{vm.id} volume {vm.volume.id} attached to "
                f"{getattr(vm.volume.attached_to, 'id', None)} "
                f"but VM is on {vm.host.instance.id}")

    # 6. Backup assignments are mutual and never on failed servers.
    for vm in vms:
        backup = vm.backup_assignment
        if backup is None:
            continue
        if backup.failed:
            violations.append(f"{vm.id} assigned to failed {backup.id}")
        if vm.id not in backup.streams:
            violations.append(
                f"{vm.id} believes it streams to {backup.id}, which "
                f"does not know it")

    # 7. Parked VMs sit on the non-revocable side.
    for vm_id, (vm, _home) in controller._parked.items():
        if vm.is_running and vm.host is not None and \
                vm.host.instance.is_spot:
            pool = controller.pools.pool_of_host(vm.host)
            if pool is not None and pool.market_kind == "spot" and \
                    not controller.config.use_staging:
                violations.append(
                    f"parked {vm_id} sits on spot host "
                    f"{vm.host.instance.id}")

    return violations
