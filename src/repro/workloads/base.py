"""Workload abstractions."""

from dataclasses import dataclass

from repro.virt.memory import MemoryModel


@dataclass(frozen=True)
class Conditions:
    """The environment a nested VM's workload currently experiences.

    Attributes
    ----------
    checkpointing:
        Whether continuous checkpointing is active (spot pools only).
    backup_overload:
        Fraction of the VM's checkpoint demand the backup server's
        write path cannot absorb (0 below the Figure 7 knee).
    restoring:
        Whether the VM is inside a lazy-restore degraded window.
    restore_concurrency:
        Peers restoring from the same backup server (per-VM bandwidth
        partitioning keeps the per-VM effect roughly flat in this).
    """

    checkpointing: bool = False
    backup_overload: float = 0.0
    restoring: bool = False
    restore_concurrency: int = 0

    def __post_init__(self):
        if not 0.0 <= self.backup_overload <= 1.0:
            raise ValueError("backup_overload must lie in [0, 1]")
        if self.restore_concurrency < 0:
            raise ValueError("restore_concurrency must be non-negative")


class Workload:
    """Base class for workload models."""

    #: Human-readable name.
    name = "abstract"

    #: Page writes per second while running.
    write_rate_pages = 0.0
    #: Fraction of guest RAM in the write-hot working set.
    working_set_fraction = 0.2
    #: Fraction of writes landing outside the hot set.
    cold_write_fraction = 0.02

    def memory_model(self, guest_bytes):
        """The dirtying profile of this workload in ``guest_bytes`` RAM."""
        return MemoryModel(
            total_bytes=guest_bytes,
            write_rate_pages=self.write_rate_pages,
            working_set_fraction=self.working_set_fraction,
            cold_write_fraction=self.cold_write_fraction,
        )

    def performance(self, conditions):
        """The workload's primary metric under ``conditions``.

        Subclasses define the metric (response time or throughput).
        """
        raise NotImplementedError

    def degradation_fraction(self, conditions):
        """Relative degradation versus the unperturbed baseline.

        Positive values mean worse (slower responses or lower
        throughput), expressed uniformly so policy code can reason
        about either workload type.
        """
        raise NotImplementedError

    def __repr__(self):
        return f"<Workload {self.name}>"
