"""Tests for Resource, Container, and the fair-share bandwidth resource."""

import pytest

from repro.sim import (Container, Environment, FairShareResource, Resource,
                       fair_share_rates)


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        r1, r2, r3 = (resource.request() for _ in range(3))
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert resource.count == 2

    def test_release_wakes_waiter(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        assert not second.triggered
        resource.release(first)
        assert second.triggered

    def test_fifo_ordering(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        queue = [resource.request() for _ in range(3)]
        resource.release(first)
        assert queue[0].triggered
        assert not queue[1].triggered

    def test_cancel_queued_request(self, env):
        resource = Resource(env, capacity=1)
        held = resource.request()
        waiting = resource.request()
        resource.release(waiting)  # withdraw from queue
        assert resource.count == 1
        resource.release(held)
        assert resource.count == 0

    def test_context_manager_releases(self, env):
        resource = Resource(env, capacity=1)
        def proc():
            with resource.request() as req:
                yield req
                assert resource.count == 1
            return resource.count
        assert env.run(until=env.process(proc())) == 0

    def test_mutual_exclusion_in_processes(self, env):
        resource = Resource(env, capacity=1)
        log = []
        def worker(name):
            request = resource.request()
            yield request
            log.append((name, "in", env.now))
            yield env.timeout(5.0)
            log.append((name, "out", env.now))
            resource.release(request)
        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert log == [("a", "in", 0.0), ("a", "out", 5.0),
                       ("b", "in", 5.0), ("b", "out", 10.0)]


class TestContainer:
    def test_initial_level(self, env):
        assert Container(env, capacity=10, init=4).level == 4

    def test_invalid_init_rejected(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=5, init=9)

    def test_put_and_get(self, env):
        container = Container(env, capacity=100)
        container.put(30)
        assert container.level == 30
        got = container.get(20)
        assert got.triggered
        assert container.level == 10

    def test_get_blocks_until_available(self, env):
        container = Container(env, capacity=100)
        pending = container.get(50)
        assert not pending.triggered
        container.put(50)
        assert pending.triggered
        assert container.level == 0

    def test_put_blocks_at_capacity(self, env):
        container = Container(env, capacity=10, init=8)
        blocked = container.put(5)
        assert not blocked.triggered
        container.get(5)
        assert blocked.triggered

    def test_zero_amount_rejected(self, env):
        container = Container(env)
        with pytest.raises(ValueError):
            container.put(0)
        with pytest.raises(ValueError):
            container.get(-1)


class TestFairShareRates:
    def test_under_demand_granted_exactly(self):
        assert fair_share_rates([10.0, 20.0], 100.0) == [10.0, 20.0]

    def test_over_demand_water_level(self):
        assert fair_share_rates([60.0, 60.0], 100.0) == [50.0, 50.0]

    def test_small_demand_frees_share_for_big(self):
        # Max-min: the 10 gets its demand, the rest split the remainder.
        assert fair_share_rates([10.0, 100.0, 100.0], 100.0) == \
            [10.0, 45.0, 45.0]

    def test_empty(self):
        assert fair_share_rates([], 50.0) == []

    def test_never_exceeds_capacity(self):
        grants = fair_share_rates([30.0, 70.0, 90.0], 120.0)
        assert sum(grants) <= 120.0 + 1e-9
        assert all(g <= d for g, d in zip(grants, [30.0, 70.0, 90.0]))


class TestFairShareResource:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            FairShareResource(env, {})
        with pytest.raises(ValueError):
            FairShareResource(env, {"link": 0.0})
        resource = FairShareResource(env, {"link": 100.0})
        with pytest.raises(ValueError):
            resource.transfer(0)
        with pytest.raises(ValueError):
            resource.transfer(10.0, rate_cap=0.0)
        with pytest.raises(ValueError):
            resource.transfer(10.0, paths=("ghost",))
        with pytest.raises(ValueError):
            resource.transfer(10.0, paths=())

    def test_single_flow_runs_at_capacity(self, env):
        resource = FairShareResource(env, {"link": 100.0})
        done = resource.transfer(1000.0)
        env.run(until=done)
        assert env.now == pytest.approx(10.0)
        assert done.value == pytest.approx(10.0)
        assert resource.flow_count() == 0

    def test_equal_flows_split_evenly(self, env):
        resource = FairShareResource(env, {"link": 100.0})
        first = resource.transfer(500.0)
        second = resource.transfer(500.0)
        assert [f.rate for f in resource.flows] == [50.0, 50.0]
        env.run(until=env.all_of([first, second]))
        assert env.now == pytest.approx(10.0)

    def test_early_finisher_releases_bandwidth(self, env):
        # 100 + 300 bytes on a 100 B/s link: equal shares until the
        # small flow drains at t=2, then the big one runs alone and the
        # link stays work-conserving (last byte at total/capacity = 4).
        resource = FairShareResource(env, {"link": 100.0})
        small = resource.transfer(100.0)
        big = resource.transfer(300.0)
        env.run(until=small)
        assert env.now == pytest.approx(2.0)
        env.run(until=big)
        assert env.now == pytest.approx(4.0)

    def test_late_arrival_rebalances_mid_flow(self, env):
        resource = FairShareResource(env, {"link": 100.0})
        first = resource.transfer(400.0)

        def later():
            yield env.timeout(1.0)
            elapsed = yield resource.transfer(100.0)
            return elapsed

        second = env.process(later())
        # First runs alone for 1 s (100 done), shares for 2 s (100 each),
        # then finishes its last 200 alone: 1 + 2 + 2 = 5 = 500/100.
        env.run(until=second)
        assert env.now == pytest.approx(3.0)
        assert second.value == pytest.approx(2.0)
        env.run(until=first)
        assert env.now == pytest.approx(5.0)

    def test_rate_cap_frees_share_for_others(self, env):
        resource = FairShareResource(env, {"link": 100.0})
        capped = resource.transfer(100.0, rate_cap=20.0)
        greedy = resource.transfer(800.0)
        assert [f.rate for f in resource.flows] == [20.0, 80.0]
        env.run(until=capped)
        assert env.now == pytest.approx(5.0)
        env.run(until=greedy)
        assert env.now == pytest.approx(9.0)  # 900 bytes / 100 B/s

    def test_multi_path_progressive_filling(self, env):
        # Two disk+nic flows bottleneck on the disk; the nic-only flow
        # soaks up what the nic has left over.
        resource = FairShareResource(env, {"disk": 90.0, "nic": 300.0})
        resource.transfer(90.0, paths=("disk", "nic"))
        resource.transfer(90.0, paths=("disk", "nic"))
        resource.transfer(420.0, paths=("nic",))
        assert [f.rate for f in resource.flows] == [45.0, 45.0, 210.0]
        for stats in resource.snapshot().values():
            assert stats["rate_sum"] <= stats["capacity"] + 1e-9

    def test_shared_path_caps_both_kinds(self, env):
        # A nic tighter than the disk binds disk flows too.
        resource = FairShareResource(env, {"disk": 90.0, "nic": 60.0})
        resource.transfer(100.0, paths=("disk", "nic"))
        resource.transfer(100.0, paths=("disk", "nic"))
        assert [f.rate for f in resource.flows] == [30.0, 30.0]

    def test_callable_capacity_sees_member_flows(self, env):
        # Aggregate throughput that collapses with concurrency, like
        # untuned random reads.
        def collapsing(members):
            return 100.0 / len(members)

        resource = FairShareResource(env, {"disk": collapsing})
        resource.transfer(1000.0)
        resource.transfer(1000.0)
        assert [f.rate for f in resource.flows] == [25.0, 25.0]
        assert resource.utilization("disk") == pytest.approx(1.0)

    def test_flow_count_by_kind(self, env):
        resource = FairShareResource(env, {"link": 100.0})
        resource.transfer(50.0, kind="commit")
        resource.transfer(50.0, kind="restore")
        resource.transfer(50.0, kind="restore")
        assert resource.flow_count() == 3
        assert resource.flow_count(kind="restore") == 2
        assert resource.flow_count(kind="commit") == 1

    def test_rebalance_callback_and_counter(self, env):
        seen = []
        resource = FairShareResource(
            env, {"link": 100.0},
            on_rebalance=lambda r: seen.append(r.rebalances))
        done = resource.transfer(100.0)
        resource.transfer(200.0)
        env.run(until=done)
        # One rebalance per arrival plus one when the first flow drains.
        assert resource.rebalances >= 3
        assert seen == list(range(1, resource.rebalances + 1))

    def test_invariant_holds_at_every_rebalance(self, env):
        resource = FairShareResource(env, {"a": 70.0, "b": 100.0})

        def check(res):
            for stats in res.snapshot().values():
                assert stats["rate_sum"] <= stats["capacity"] + 1e-9

        resource.on_rebalance = check
        resource.transfer(100.0, paths=("a", "b"))
        resource.transfer(300.0, paths=("b",))

        def later():
            yield env.timeout(0.5)
            yield resource.transfer(40.0, paths=("a",))

        env.process(later())
        env.run()
        assert resource.flow_count() == 0

    def test_transfer_value_is_elapsed_time(self, env):
        resource = FairShareResource(env, {"link": 10.0})

        def start_later():
            yield env.timeout(7.0)
            elapsed = yield resource.transfer(30.0)
            return elapsed

        proc = env.process(start_later())
        env.run(until=proc)
        assert proc.value == pytest.approx(3.0)
        assert env.now == pytest.approx(10.0)
