"""Tests for Resource and Container."""

import pytest

from repro.sim import Container, Environment, Resource


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        r1, r2, r3 = (resource.request() for _ in range(3))
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert resource.count == 2

    def test_release_wakes_waiter(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        assert not second.triggered
        resource.release(first)
        assert second.triggered

    def test_fifo_ordering(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        queue = [resource.request() for _ in range(3)]
        resource.release(first)
        assert queue[0].triggered
        assert not queue[1].triggered

    def test_cancel_queued_request(self, env):
        resource = Resource(env, capacity=1)
        held = resource.request()
        waiting = resource.request()
        resource.release(waiting)  # withdraw from queue
        assert resource.count == 1
        resource.release(held)
        assert resource.count == 0

    def test_context_manager_releases(self, env):
        resource = Resource(env, capacity=1)
        def proc():
            with resource.request() as req:
                yield req
                assert resource.count == 1
            return resource.count
        assert env.run(until=env.process(proc())) == 0

    def test_mutual_exclusion_in_processes(self, env):
        resource = Resource(env, capacity=1)
        log = []
        def worker(name):
            request = resource.request()
            yield request
            log.append((name, "in", env.now))
            yield env.timeout(5.0)
            log.append((name, "out", env.now))
            resource.release(request)
        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert log == [("a", "in", 0.0), ("a", "out", 5.0),
                       ("b", "in", 5.0), ("b", "out", 10.0)]


class TestContainer:
    def test_initial_level(self, env):
        assert Container(env, capacity=10, init=4).level == 4

    def test_invalid_init_rejected(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=5, init=9)

    def test_put_and_get(self, env):
        container = Container(env, capacity=100)
        container.put(30)
        assert container.level == 30
        got = container.get(20)
        assert got.triggered
        assert container.level == 10

    def test_get_blocks_until_available(self, env):
        container = Container(env, capacity=100)
        pending = container.get(50)
        assert not pending.triggered
        container.put(50)
        assert pending.triggered
        assert container.level == 0

    def test_put_blocks_at_capacity(self, env):
        container = Container(env, capacity=10, init=8)
        blocked = container.put(5)
        assert not blocked.triggered
        container.get(5)
        assert blocked.triggered

    def test_zero_amount_rejected(self, env):
        container = Container(env)
        with pytest.raises(ValueError):
            container.put(0)
        with pytest.raises(ValueError):
            container.get(-1)
