"""Cost-variance study: determinism, digest pinning, drive laziness."""

import json
from pathlib import Path

import pytest

from repro.experiments.cost_index import (
    DEFAULT_POLICIES,
    MAX_DELIVERED_FRACTION,
    check_index_digest,
    fleet_rate,
    index_digest,
    run_index,
)

SMALL = dict(seed=5, days=4.0, vms=4,
             policies=("4P-COST", "IT-0.125", "OC-2"))

GOLDEN_PATH = (Path(__file__).resolve().parents[2]
               / "src" / "repro" / "experiments" / "index_golden.json")


@pytest.fixture(scope="module")
def small_run():
    return run_index(**SMALL)


class TestRun:
    def test_every_policy_sampled_hourly(self, small_run):
        results, digest = small_run
        expected = int(SMALL["days"] * 24)
        for policy in SMALL["policies"]:
            assert digest["policies"][policy]["samples"] == expected
            assert len(results[policy]["samples"]) == expected

    def test_deterministic_across_runs(self, small_run):
        _, first = small_run
        _, second = run_index(**SMALL)
        assert first == second

    def test_digest_is_json_stable(self, small_run):
        _, digest = small_run
        assert json.loads(json.dumps(digest)) == digest

    def test_shared_archive_means_identical_points(self, small_run):
        _, digest = small_run
        points = {entry["drive_points"]
                  for entry in digest["policies"].values()}
        assert len(points) == 1

    def test_portfolio_drive_stays_lazy(self, small_run):
        _, digest = small_run
        for policy, entry in digest["policies"].items():
            assert entry["delivered_fraction"] < MAX_DELIVERED_FRACTION, \
                policy

    def test_it_tracks_its_band(self, small_run):
        _, digest = small_run
        entry = digest["policies"]["IT-0.125"]
        assert entry["band_lo"] < entry["band_hi"]
        assert entry["realized_in_band"] is True
        assert entry["band_lo"] <= entry["realized_per_vm_hour"] \
            <= entry["band_hi"]
        assert 0.0 < entry["in_band_fraction"] <= 1.0

    def test_it_beats_cost_policy_on_variance(self, small_run):
        _, digest = small_run
        policies = digest["policies"]
        assert policies["IT-0.125"]["cost_std"] < \
            policies["4P-COST"]["cost_std"]
        order = digest["variance_order"]
        assert order.index("IT-0.125") < order.index("4P-COST")

    def test_self_check_is_clean(self, small_run):
        _, digest = small_run
        assert check_index_digest(digest, digest) == []


class TestCheck:
    def test_flags_value_drift(self, small_run):
        _, digest = small_run
        golden = json.loads(json.dumps(digest))
        golden["policies"]["4P-COST"]["cost_std"] += 1.0
        problems = check_index_digest(digest, golden)
        assert any("cost_std" in p for p in problems)

    def test_flags_per_point_drive(self, small_run):
        _, digest = small_run
        broken = json.loads(json.dumps(digest))
        broken["policies"]["IT-0.125"]["delivered_fraction"] = 1.0
        problems = check_index_digest(broken, broken)
        assert any("crossing-driven" in p for p in problems)

    def test_flags_band_escape(self, small_run):
        _, digest = small_run
        broken = json.loads(json.dumps(digest))
        broken["policies"]["IT-0.125"]["realized_in_band"] = False
        problems = check_index_digest(broken, broken)
        assert any("outside band" in p for p in problems)

    def test_flags_lost_variance_edge(self, small_run):
        _, digest = small_run
        broken = json.loads(json.dumps(digest))
        broken["policies"]["IT-0.125"]["cost_std"] = \
            broken["policies"]["4P-COST"]["cost_std"] + 1.0
        problems = check_index_digest(broken, broken)
        assert any("not strictly below" in p for p in problems)


class TestGolden:
    def test_golden_file_parses_with_default_policies(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert set(golden["policies"]) == set(DEFAULT_POLICIES)
        assert set(golden["variance_order"]) == set(DEFAULT_POLICIES)
        for entry in golden["policies"].values():
            assert entry["delivered_fraction"] < MAX_DELIVERED_FRACTION

    def test_golden_pins_it_variance_win(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        policies = golden["policies"]
        for name in ("IT-0.125", "IT-0.14"):
            assert policies[name]["cost_std"] < \
                policies["4P-COST"]["cost_std"]
            assert policies[name]["realized_in_band"] is True


class TestFleetRate:
    def test_none_when_nothing_runs(self, small_run):
        class Empty:
            customers = {}
        assert fleet_rate(Empty()) is None
