"""Test package."""
