"""Price-trace storage: the :class:`PriceTrace` container and archives.

A trace is a step function: ``prices[i]`` is in effect from ``times[i]``
until ``times[i+1]``.  Traces are immutable; transformations return new
traces.
"""

import csv
import json
import os

import numpy as np


class PriceTrace:
    """A step-function price series for one (type, zone) market.

    Parameters
    ----------
    times:
        Monotonically non-decreasing change times, seconds.
    prices:
        Price in effect from each change time, $/hour.
    type_name, zone_name:
        Market identity.
    on_demand_price:
        The equivalent on-demand price, used for ratio statistics.
    """

    def __init__(self, times, prices, type_name, zone_name, on_demand_price):
        times = np.asarray(times, dtype=float)
        prices = np.asarray(prices, dtype=float)
        if times.ndim != 1 or times.shape != prices.shape:
            raise ValueError("times and prices must be equal-length 1-D arrays")
        if len(times) == 0:
            raise ValueError("a trace needs at least one point")
        if np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        if np.any(prices <= 0):
            raise ValueError("prices must be positive")
        if on_demand_price <= 0:
            raise ValueError("on-demand price must be positive")
        self.times = times
        self.prices = prices
        self.type_name = type_name
        self.zone_name = zone_name
        self.on_demand_price = float(on_demand_price)

    @property
    def key(self):
        return (self.type_name, self.zone_name)

    def __len__(self):
        return len(self.times)

    @property
    def start(self):
        return float(self.times[0])

    @property
    def end(self):
        return float(self.times[-1])

    def arrays(self):
        """(times, prices) arrays — the :class:`SpotMarket` interface."""
        return self.times, self.prices

    def price_at(self, when):
        """Price in effect at time ``when``."""
        idx = int(np.searchsorted(self.times, when, side="right")) - 1
        return float(self.prices[max(idx, 0)])

    def durations(self, horizon=None):
        """Seconds each price was in effect; last segment runs to ``horizon``."""
        horizon = self.end if horizon is None else float(horizon)
        ends = np.append(self.times[1:], max(horizon, self.end))
        return np.maximum(ends - self.times, 0.0)

    def time_weighted_mean(self, horizon=None):
        """Time-average price over the trace."""
        weights = self.durations(horizon)
        total = weights.sum()
        if total == 0:
            return float(self.prices[-1])
        return float(np.dot(self.prices, weights) / total)

    def ratios(self):
        """Price / on-demand-price array."""
        return self.prices / self.on_demand_price

    def slice(self, start, end):
        """The trace restricted to [start, end), keeping the price in
        effect at ``start`` as the first point."""
        if end <= start:
            raise ValueError("end must exceed start")
        mask = (self.times >= start) & (self.times < end)
        times = self.times[mask]
        prices = self.prices[mask]
        if len(times) == 0 or times[0] > start:
            times = np.insert(times, 0, start)
            prices = np.insert(prices, 0, self.price_at(start))
        return PriceTrace(times, prices, self.type_name, self.zone_name,
                          self.on_demand_price)

    def quantize(self, decimals=4):
        """Round prices and drop repeated consecutive values.

        EC2 publishes prices at sub-cent granularity; quantizing the
        synthetic trace the same way collapses micro-fluctuations and
        shrinks the event count of long macro simulations.
        """
        prices = np.round(self.prices, decimals)
        prices = np.maximum(prices, 10.0 ** -decimals)
        keep = np.ones(len(prices), dtype=bool)
        keep[1:] = prices[1:] != prices[:-1]
        return PriceTrace(self.times[keep], prices[keep], self.type_name,
                          self.zone_name, self.on_demand_price)

    def crossings_above(self, threshold):
        """Times at which the price crosses from <= threshold to above it."""
        above = self.prices > threshold
        rising = above & ~np.insert(above[:-1], 0, False)
        return self.times[rising]

    def crossings_below(self, threshold):
        """Times at which the price crosses from > threshold to <= it.

        The mirror of :meth:`crossings_above` — the points where a
        parked pool becomes eligible to return to the spot market.
        """
        below = self.prices <= threshold
        falling = below & ~np.insert(below[:-1], 0, False)
        return self.times[falling]

    def first_index_above(self, threshold, start=0):
        """Index of the first point at or after ``start`` whose price
        exceeds ``threshold``, or ``None``.

        Vectorized equivalent of scanning the trace point by point —
        the primitive the event-skipping market drive plans bid
        crossings with.
        """
        above = np.flatnonzero(self.prices[start:] > threshold)
        return int(above[0]) + start if len(above) else None

    def first_index_in_band(self, lo, hi, start=0):
        """Index of the first point at or after ``start`` with
        ``lo < price <= hi``, or ``None``.  ``None`` bounds are open."""
        window = self.prices[start:]
        mask = np.ones(len(window), dtype=bool)
        if lo is not None:
            mask &= window > lo
        if hi is not None:
            mask &= window <= hi
        hits = np.flatnonzero(mask)
        return int(hits[0]) + start if len(hits) else None

    def exact_hop_chain(self):
        """Whether ``t[i-1] + (t[i] - t[i-1])`` lands exactly on ``t[i]``
        for every consecutive pair.

        When true (ubiquitously so for real traces), a step driver's
        accumulated float clock equals the trace times themselves, and
        the skipping drive can schedule wake-ups at ``times[k]``
        directly instead of folding hop by hop.  Cached — the check is
        O(n) and the answer is immutable.
        """
        cached = getattr(self, "_exact_hop_chain", None)
        if cached is None:
            if len(self.times) > 1:
                hop = self.times[:-1] + (self.times[1:] - self.times[:-1])
                cached = bool(np.all(hop == self.times[1:]))
            else:
                cached = True
            self._exact_hop_chain = cached
        return cached

    def __repr__(self):
        return (f"<PriceTrace {self.type_name}/{self.zone_name} "
                f"{len(self)} points over {self.end - self.start:.0f}s>")


class TraceArchive:
    """A keyed collection of traces with CSV-directory persistence."""

    def __init__(self, traces=()):
        self._traces = {}
        for trace in traces:
            self.add(trace)

    def add(self, trace):
        if trace.key in self._traces:
            raise ValueError(f"duplicate trace for market {trace.key}")
        self._traces[trace.key] = trace

    def get(self, type_name, zone_name):
        try:
            return self._traces[(type_name, zone_name)]
        except KeyError:
            raise KeyError(
                f"no trace for market ({type_name}, {zone_name})") from None

    def __iter__(self):
        return iter(self._traces.values())

    def __len__(self):
        return len(self._traces)

    def __contains__(self, key):
        return key in self._traces

    def keys(self):
        return list(self._traces)

    def save(self, directory):
        """Write one CSV per trace plus an index.json into ``directory``."""
        os.makedirs(directory, exist_ok=True)
        index = []
        for trace in self:
            filename = f"{trace.type_name}_{trace.zone_name}.csv".replace(
                "/", "_")
            index.append({
                "file": filename,
                "type": trace.type_name,
                "zone": trace.zone_name,
                "on_demand_price": trace.on_demand_price,
            })
            with open(os.path.join(directory, filename), "w", newline="") as f:
                writer = csv.writer(f)
                writer.writerow(["time_s", "price_per_hour"])
                for when, price in zip(trace.times, trace.prices):
                    writer.writerow([f"{when:.3f}", f"{price:.6f}"])
        with open(os.path.join(directory, "index.json"), "w") as f:
            json.dump(index, f, indent=2)

    def save_npz(self, path):
        """Write the archive to one ``.npz`` file, losslessly.

        Unlike the CSV directory format (:meth:`save`), which rounds
        times and prices for readability, the npz form stores the raw
        float64 arrays — a :meth:`load_npz` round-trip is bit-exact.
        The parallel grid runner relies on this: workers that load a
        shared archive from disk must see byte-identical prices to a
        serial run that kept the archive in memory.
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        meta = []
        arrays = {}
        for i, trace in enumerate(self):
            meta.append({
                "type": trace.type_name,
                "zone": trace.zone_name,
                "on_demand_price": trace.on_demand_price,
            })
            arrays[f"times_{i}"] = trace.times
            arrays[f"prices_{i}"] = trace.prices
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)

    @classmethod
    def load_npz(cls, path):
        """Load an archive previously written by :meth:`save_npz`."""
        archive = cls()
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            for i, entry in enumerate(meta):
                archive.add(PriceTrace(
                    data[f"times_{i}"], data[f"prices_{i}"], entry["type"],
                    entry["zone"], entry["on_demand_price"]))
        return archive

    @classmethod
    def load(cls, directory):
        """Load an archive previously written by :meth:`save`."""
        with open(os.path.join(directory, "index.json")) as f:
            index = json.load(f)
        archive = cls()
        for entry in index:
            times, prices = [], []
            with open(os.path.join(directory, entry["file"]), newline="") as f:
                for row in csv.DictReader(f):
                    times.append(float(row["time_s"]))
                    prices.append(float(row["price_per_hour"]))
            archive.add(PriceTrace(times, prices, entry["type"],
                                   entry["zone"], entry["on_demand_price"]))
        return archive
