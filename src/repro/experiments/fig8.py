"""Figure 8: restoration cost under concurrency.

(a) downtime of stop-and-copy (full) restores for 1/5/10 concurrent
    VMs, unoptimized vs SpotCheck-optimized;
(b) degraded-time of lazy restores for the same batches — the
    unoptimized variant collapses at 10 concurrent because random
    demand-paged reads thrash the disk, which is exactly what the
    ``fadvise`` optimization fixes.

Both the analytic estimates and a full DES execution (restoring real
nested-VM objects through the scheduler) are produced; they agree by
construction, and the DES path also exercises the state machinery.
"""

from repro.backup.scheduler import RestoreScheduler
from repro.backup.server import BackupServer, BackupServerSpec
from repro.cloud.instance_types import M3_CATALOG
from repro.sim.kernel import Environment
from repro.virt.vm import NestedVM
from repro.workloads import TpcwWorkload

GUEST_BYTES = int(3.75 * 0.45 * 1024 ** 3)

CONCURRENCY = (1, 5, 10)


def run(concurrency=CONCURRENCY, backup_spec=None, use_des=True):
    """Returns rows keyed by (concurrency, kind, optimized)."""
    spec = backup_spec or BackupServerSpec()
    rows = []
    for n in concurrency:
        for kind in ("full", "lazy"):
            for optimized in (False, True):
                env = Environment()
                server = BackupServer(env, spec)
                scheduler = RestoreScheduler(server)
                if kind == "full":
                    analytic = scheduler.full_restore_downtime_s(
                        GUEST_BYTES, n, optimized)
                else:
                    analytic = scheduler.lazy_restore_degraded_s(
                        GUEST_BYTES, n, optimized)
                row = {
                    "concurrent": n,
                    "kind": kind,
                    "optimized": optimized,
                    "analytic_s": analytic,
                }
                if use_des:
                    row["des_s"] = _des_duration(
                        env, scheduler, kind, optimized, n)
                rows.append(row)
    return {"rows": rows}


def _des_duration(env, scheduler, kind, optimized, n):
    itype = M3_CATALOG.get("m3.medium")
    vms = []
    for _ in range(n):
        vm = NestedVM(env, itype, workload=TpcwWorkload())
        vm.state_log.clear()
        vms.append(vm)
    batch = scheduler.run_batch(
        env, [(vm, GUEST_BYTES) for vm in vms], kind, optimized)
    results = env.run(until=batch)
    if kind == "full":
        return max(downtime for downtime, _degraded in results)
    return max(degraded for _downtime, degraded in results)


def pick(result, concurrent, kind, optimized):
    """Extract one row's duration."""
    for row in result["rows"]:
        if (row["concurrent"] == concurrent and row["kind"] == kind
                and row["optimized"] == optimized):
            return row["analytic_s"]
    raise KeyError((concurrent, kind, optimized))


# -- overlapping-storm scenario (CI smoke + regression surface) ----------

DEFAULT_STORM_BATCHES = ((3, 0.0), (3, 45.0))


def run_storm(batches=DEFAULT_STORM_BATCHES, kind="lazy", optimized=True,
              image_bytes=GUEST_BYTES, backup_spec=None, commit_vms=4,
              commit_bytes=82.5e6):
    """Staggered restore batches plus checkpoint commits on one server.

    ``batches`` is a sequence of ``(vm_count, start_offset_s)`` — the
    overlapping-storm regime the batch-frozen scheduler used to get
    wrong.  ``commit_vms`` concurrent final commits (of
    ``commit_bytes`` each, the 30 s x 2.75 MB/s worst-case residual)
    are launched alongside the first batch so writes contend with the
    restore reads.  Samples the datapath at every rebalance and reports
    the peak per-path utilization — the fair-share invariant says it
    never exceeds 1.
    """
    env = Environment()
    server = BackupServer(env, backup_spec or BackupServerSpec())
    scheduler = RestoreScheduler(server)

    peak = {path: 0.0 for path in server.datapath.capacities}
    chained = server.datapath.on_rebalance

    def _sample(datapath):
        for path, stats in datapath.snapshot().items():
            if stats["capacity"] > 0:
                peak[path] = max(peak[path],
                                 stats["rate_sum"] / stats["capacity"])
        if chained is not None:
            chained(datapath)

    server.datapath.on_rebalance = _sample

    itype = M3_CATALOG.get("m3.medium")

    def _delayed_batch(count, at_s):
        if at_s > 0:
            yield env.timeout(at_s)
        vms = []
        for _ in range(count):
            vm = NestedVM(env, itype, workload=TpcwWorkload())
            vm.state_log.clear()
            vms.append(vm)
        results = yield scheduler.run_batch(
            env, [(vm, image_bytes) for vm in vms], kind, optimized)
        return [{"batch_start_s": at_s, "downtime_s": downtime,
                 "degraded_s": degraded}
                for downtime, degraded in results]

    def _commits(count):
        flows = [server.commit_flow(commit_bytes) for _ in range(count)]
        yield env.all_of(flows)

    batch_procs = [env.process(_delayed_batch(count, at_s))
                   for count, at_s in batches]
    procs = list(batch_procs)
    if commit_vms:
        procs.append(env.process(_commits(commit_vms)))
    env.run(until=env.all_of(procs))

    per_vm = [row for proc in batch_procs for row in proc.value]
    return {
        "per_vm": per_vm,
        "rebalances": server.datapath.rebalances,
        "peak_utilization": peak,
        "invariant_ok": max(peak.values()) <= 1.0 + 1e-9,
    }


def storm_smoke(echo=None):
    """The CI storm smoke: invariant + analytic cross-check.

    Returns ``(ok, lines)``: ``ok`` is False if the fair-share
    invariant was violated at any event time or an isolated equal-size
    batch drifted from its closed-form downtime by more than 1e-6
    relative error.
    """
    lines = []
    storm = run_storm()
    for path, utilization in sorted(storm["peak_utilization"].items()):
        lines.append(f"peak {path} utilization {utilization:.6f} "
                     f"over {storm['rebalances']} rebalances")
    ok = storm["invariant_ok"]
    if not ok:
        lines.append("FAIL: flow rates exceeded a path capacity")

    n = 5
    env = Environment()
    server = BackupServer(env, BackupServerSpec())
    scheduler = RestoreScheduler(server)
    analytic = scheduler.full_restore_downtime_s(GUEST_BYTES, n, True)
    des = _des_duration(env, scheduler, "full", True, n)
    rel = abs(des - analytic) / analytic
    lines.append(f"isolated batch of {n}: DES {des:.3f}s vs analytic "
                 f"{analytic:.3f}s (rel err {rel:.2e})")
    if rel > 1e-6:
        lines.append("FAIL: DES drifted from the analytic estimate")
        ok = False
    if echo is not None:
        for line in lines:
            echo(line)
    return ok, lines
