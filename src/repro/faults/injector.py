"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

One injector is bound to an environment (and its ``faults.injector``
RNG stream) and consulted by :class:`~repro.cloud.api.CloudApi` at two
points of every mutating control-plane call:

* :meth:`FaultInjector.check` — before the operation takes effect; may
  raise a typed error (:class:`~repro.cloud.errors.ThrottlingError`,
  :class:`~repro.cloud.errors.ApiError`,
  :class:`~repro.cloud.errors.InsufficientInstanceCapacity`).
* :meth:`FaultInjector.adjusted_latency` — inflates the sampled
  latency for tail episodes and stuck volume detaches.

Scheduled backup-server crashes are driven by a separate process
(:meth:`FaultInjector.install_backup_crashes`) that fires the
controller's existing ``fail_backup_server`` hook.

Every injected fault emits a ``fault.injected`` event and increments
``faults_injected_total{kind,operation}``, so a chaos run's injected
faults are fully visible in the ``repro.obs`` exports.
"""

from repro.cloud.errors import (
    ApiError,
    InsufficientInstanceCapacity,
    ThrottlingError,
)

#: Named RNG stream all injection draws come from.  Separate from the
#: model streams, so enabling faults never perturbs market prices or
#: latency samples — and a disabled plan draws nothing at all.
INJECTOR_STREAM = "faults.injector"


class FaultInjector:
    """Deterministic executor for one fault plan."""

    def __init__(self, env, plan):
        self.env = env
        self.plan = plan
        self._rng = env.rng.stream(INJECTOR_STREAM)
        #: kind -> injected count, mirrored into obs metrics.
        self.counts = {}

    # -- control-plane call hooks ---------------------------------------

    def check(self, operation, type_name=None, zone_name=None,
              market_kind=None):
        """Raise the fault (if any) injected into this call."""
        plan = self.plan
        now = self.env.now
        for window in plan.throttle_windows:
            if window.matches(now, operation) and \
                    self._rng.random() < window.rate:
                self._record("throttle", operation)
                raise ThrottlingError(
                    f"RequestLimitExceeded: {operation} throttled",
                    operation=operation)
        rate = plan.error_rates.get(operation, 0.0)
        if rate and self._rng.random() < rate:
            terminal = (plan.terminal_fraction > 0.0
                        and self._rng.random() < plan.terminal_fraction)
            kind = "api-error-terminal" if terminal else "api-error"
            self._record(kind, operation)
            raise ApiError(
                f"InternalError: {operation} failed"
                f"{' (terminal)' if terminal else ''}",
                operation=operation, retryable=not terminal)
        if type_name is not None:
            for episode in plan.capacity_episodes:
                if episode.matches(now, type_name, zone_name, market_kind):
                    self._record("capacity", operation)
                    raise InsufficientInstanceCapacity(
                        f"InsufficientInstanceCapacity: no {type_name} "
                        f"{market_kind} capacity in {zone_name}")

    def adjusted_latency(self, operation, latency):
        """Inflate a sampled latency per the plan's tail model."""
        tail = self.plan.latency_tails.get(operation)
        if tail is not None and tail.rate and \
                self._rng.random() < tail.rate:
            self._record("latency-tail", operation)
            latency = latency * tail.multiplier
        if operation == "detach_volume" and self.plan.stuck_detach_rate \
                and self._rng.random() < self.plan.stuck_detach_rate:
            self._record("stuck-detach", operation)
            latency = latency + self.plan.stuck_detach_extra_s
        return latency

    # -- scheduled backup-server crashes --------------------------------

    def install_backup_crashes(self, controller):
        """Start the crash driver against ``controller`` (if scheduled)."""
        if self.plan.backup_crashes:
            self.env.process(self._backup_crash_driver(controller))

    def _backup_crash_driver(self, controller):
        for crash in sorted(self.plan.backup_crashes, key=lambda c: c.at_s):
            if crash.at_s > self.env.now:
                yield self.env.timeout(crash.at_s - self.env.now)
            servers = [s for s in controller.backup_pool.servers
                       if not s.failed]
            if not servers:
                continue
            server = servers[crash.server_index % len(servers)]
            self._record("backup-crash", "fail_backup_server")
            controller.fail_backup_server(server)

    # -- bookkeeping ----------------------------------------------------

    def _record(self, kind, operation):
        self.counts[kind] = self.counts.get(kind, 0) + 1
        obs = self.env.obs
        if obs is not None:
            obs.emit("fault.injected", kind=kind, operation=operation)
            obs.metrics.counter("faults_injected_total", kind=kind,
                                operation=operation).inc()

    @property
    def total_injected(self):
        return sum(self.counts.values())
