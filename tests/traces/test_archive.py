"""Tests for PriceTrace and TraceArchive, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traces.archive import PriceTrace, TraceArchive


def make_trace(steps, od=0.07):
    times = [t for t, _ in steps]
    prices = [p for _, p in steps]
    return PriceTrace(times, prices, "m3.medium", "z1", od)


@st.composite
def trace_strategy(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    gaps = draw(st.lists(
        st.floats(min_value=0.0, max_value=5000.0,
                  allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n))
    times = np.cumsum(np.asarray(gaps))
    prices = draw(st.lists(
        st.floats(min_value=1e-4, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n))
    return make_trace(list(zip(times, prices)))


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_trace([])

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError):
            make_trace([(10, 0.1), (5, 0.2)])

    def test_non_positive_price_rejected(self):
        with pytest.raises(ValueError):
            make_trace([(0, 0.0)])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PriceTrace([0, 1], [0.1], "t", "z", 0.07)

    def test_bad_on_demand_price_rejected(self):
        with pytest.raises(ValueError):
            make_trace([(0, 0.1)], od=0.0)


class TestPriceAt:
    def test_step_function_semantics(self):
        trace = make_trace([(0, 0.02), (100, 0.05), (200, 0.03)])
        assert trace.price_at(0) == 0.02
        assert trace.price_at(99.9) == 0.02
        assert trace.price_at(100) == 0.05
        assert trace.price_at(150) == 0.05
        assert trace.price_at(1e9) == 0.03

    def test_before_first_point_extends_back(self):
        trace = make_trace([(50, 0.04)])
        assert trace.price_at(0) == 0.04

    @given(trace_strategy(), st.floats(min_value=0, max_value=2e5,
                                       allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_price_at_always_a_trace_price(self, trace, when):
        assert trace.price_at(when) in set(map(float, trace.prices))


class TestAggregates:
    def test_time_weighted_mean(self):
        trace = make_trace([(0, 0.02), (100, 0.06)])
        assert trace.time_weighted_mean(horizon=200) == \
            pytest.approx((0.02 * 100 + 0.06 * 100) / 200)

    def test_durations_with_horizon(self):
        trace = make_trace([(0, 0.02), (100, 0.06)])
        assert list(trace.durations(horizon=300)) == [100.0, 200.0]

    def test_ratios(self):
        trace = make_trace([(0, 0.035)], od=0.07)
        assert trace.ratios()[0] == pytest.approx(0.5)

    @given(trace_strategy())
    @settings(max_examples=60, deadline=None)
    def test_mean_within_price_range(self, trace):
        mean = trace.time_weighted_mean(horizon=trace.end + 100)
        assert trace.prices.min() - 1e-12 <= mean <= trace.prices.max() + 1e-12


class TestSlice:
    def test_slice_keeps_price_in_effect(self):
        trace = make_trace([(0, 0.02), (100, 0.06), (200, 0.03)])
        window = trace.slice(150, 250)
        assert window.price_at(150) == 0.06
        assert window.price_at(210) == 0.03
        assert window.start == 150

    def test_slice_empty_window_rejected(self):
        trace = make_trace([(0, 0.02)])
        with pytest.raises(ValueError):
            trace.slice(10, 10)

    @given(trace_strategy(),
           st.floats(min_value=0, max_value=1e5, allow_nan=False),
           st.floats(min_value=1.0, max_value=1e5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_slice_agrees_with_original(self, trace, start, width):
        window = trace.slice(start, start + width)
        for probe in (start, start + width / 2):
            assert window.price_at(probe) == trace.price_at(probe)


class TestQuantize:
    def test_rounds_and_dedupes(self):
        trace = make_trace([(0, 0.020004), (10, 0.020001), (20, 0.05)])
        quantized = trace.quantize(4)
        assert len(quantized) == 2
        assert quantized.prices[0] == pytest.approx(0.02)

    def test_never_rounds_to_zero(self):
        trace = make_trace([(0, 1e-6)])
        assert quantized_min(trace) > 0

    @given(trace_strategy())
    @settings(max_examples=60, deadline=None)
    def test_quantize_error_bounded(self, trace):
        quantized = trace.quantize(4)
        for when in trace.times:
            assert abs(quantized.price_at(float(when))
                       - trace.price_at(float(when))) <= 5.1e-5 + 1e-4


def quantized_min(trace):
    return trace.quantize(4).prices.min()


class TestCrossings:
    def test_counts_upward_crossings(self):
        trace = make_trace(
            [(0, 0.02), (10, 0.09), (20, 0.03), (30, 0.10), (40, 0.12)])
        assert list(trace.crossings_above(0.07)) == [10.0, 30.0]

    def test_initial_above_not_a_crossing_then_recross(self):
        trace = make_trace([(0, 0.09), (10, 0.02), (20, 0.09)])
        crossings = trace.crossings_above(0.07)
        assert 20.0 in crossings


class TestArchive:
    def test_add_get_contains(self):
        archive = TraceArchive([make_trace([(0, 0.02)])])
        assert ("m3.medium", "z1") in archive
        assert archive.get("m3.medium", "z1").price_at(0) == 0.02

    def test_duplicate_rejected(self):
        archive = TraceArchive([make_trace([(0, 0.02)])])
        with pytest.raises(ValueError):
            archive.add(make_trace([(0, 0.03)]))

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            TraceArchive().get("m3.medium", "zX")

    def test_save_load_roundtrip(self, tmp_path):
        archive = TraceArchive([
            make_trace([(0, 0.021), (50.5, 0.033)]),
        ])
        archive.save(str(tmp_path / "traces"))
        loaded = TraceArchive.load(str(tmp_path / "traces"))
        trace = loaded.get("m3.medium", "z1")
        assert trace.on_demand_price == 0.07
        assert list(trace.times) == [0.0, 50.5]
        assert trace.prices[1] == pytest.approx(0.033)


class TestNpzRoundTrip:
    def test_bit_exact(self, tmp_path):
        """npz persistence is lossless — the parallel grid's invariant."""
        archive = TraceArchive([
            make_trace([(0, 0.07 / 3), (1e7 / 3, 0.0123456789)]),
            PriceTrace([0.0, 99.9], [0.5, 0.25], "m3.large", "z2", 0.14),
        ])
        path = str(tmp_path / "archive.npz")
        archive.save_npz(path)
        loaded = TraceArchive.load_npz(path)
        assert loaded.keys() == archive.keys()
        for original in archive:
            trace = loaded.get(*original.key)
            assert trace.times.tobytes() == original.times.tobytes()
            assert trace.prices.tobytes() == original.prices.tobytes()
            assert trace.on_demand_price == original.on_demand_price

    def test_generated_archive_round_trips(self, tmp_path):
        from repro.traces.calibration import M3_MARKET_PARAMS
        from repro.traces.generator import TraceGenerator
        generator = TraceGenerator(seed=3)
        params = M3_MARKET_PARAMS["m3.medium"]
        archive = TraceArchive([
            generator.generate_market("m3.medium", "z1", params,
                                      duration_s=5 * 24 * 3600.0),
        ])
        path = str(tmp_path / "gen.npz")
        archive.save_npz(path)
        loaded = TraceArchive.load_npz(path)
        original = archive.get("m3.medium", "z1")
        trace = loaded.get("m3.medium", "z1")
        assert np.array_equal(trace.times, original.times)
        assert np.array_equal(trace.prices, original.prices)
