"""Multi-customer behaviour: per-customer spreading, isolation,
per-customer accounting surfaces."""

import pytest

from repro.core.config import SpotCheckConfig
from repro.virt.vm import VMState
from repro.workloads import TpcwWorkload

from tests.core.test_controller import (
    SPIKE_START,
    build,
    launch_fleet,
    quiet_trace,
)


def build_quiet_4pools(config=None):
    traces = {
        name: quiet_trace(name, od)
        for name, od in (("m3.medium", 0.07), ("m3.large", 0.14),
                         ("m3.xlarge", 0.28), ("m3.2xlarge", 0.56))
    }
    return build(config or SpotCheckConfig(allocation_policy="4P-ED"),
                 traces=traces)


def launch_for(env, controller, customer, count):
    def flow():
        vms = []
        for _ in range(count):
            vms.append((yield controller.request_server(
                customer, workload=TpcwWorkload())))
        return vms
    return env.run(until=env.process(flow()))


class TestPerCustomerSpreading:
    def test_each_customer_spreads_individually(self):
        # Section 4.2: each customer's fleet individually diversifies —
        # customer B's first VM must start the pool cycle afresh, not
        # continue from where customer A's cursor left off.
        env, api, controller = build_quiet_4pools()
        alice = controller.start_customer("alice")
        bob = controller.start_customer("bob")
        alice_vms = launch_for(env, controller, alice, 4)
        bob_vms = launch_for(env, controller, bob, 4)
        alice_pools = sorted(vm.host.itype.name for vm in alice_vms)
        bob_pools = sorted(vm.host.itype.name for vm in bob_vms)
        expected = sorted(["m3.medium", "m3.large", "m3.xlarge",
                           "m3.2xlarge"])
        assert alice_pools == expected
        assert bob_pools == expected

    def test_single_customer_small_fleet_still_spreads(self):
        env, api, controller = build_quiet_4pools()
        carol = controller.start_customer("carol")
        vms = launch_for(env, controller, carol, 2)
        assert len({vm.host.itype.name for vm in vms}) == 2


class TestIsolation:
    def test_customers_share_hosts_but_not_vms(self):
        # Slicing multiplexes customers onto one native VM; the nested
        # hypervisor keeps their nested VMs distinct.
        traces = {"m3.medium": quiet_trace("m3.medium", 0.07),
                  "m3.large": quiet_trace("m3.large", 0.14)}
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="2P-ML"), traces=traces)
        alice = controller.start_customer("alice")
        bob = controller.start_customer("bob")
        [alice_vm1] = launch_for(env, controller, alice, 1)
        [alice_vm2] = launch_for(env, controller, alice, 1)
        [bob_vm1] = launch_for(env, controller, bob, 1)
        [bob_vm2] = launch_for(env, controller, bob, 1)
        large_vms = [vm for vm in (alice_vm1, alice_vm2, bob_vm1, bob_vm2)
                     if vm.host.itype.name == "m3.large"]
        assert len(large_vms) == 2
        assert large_vms[0].host is large_vms[1].host  # shared host
        assert large_vms[0].customer is not large_vms[1].customer
        assert large_vms[0].private_ip != large_vms[1].private_ip

    def test_own_subnet_per_customer(self):
        env, api, controller = build_quiet_4pools()
        alice = controller.start_customer("alice")
        bob = controller.start_customer("bob")
        launch_for(env, controller, alice, 1)
        launch_for(env, controller, bob, 1)
        alice_net = list(alice.subnets.values())[0].network
        bob_net = list(bob.subnets.values())[0].network
        assert not alice_net.overlaps(bob_net)

    def test_head_vm_designation(self):
        env, api, controller = build_quiet_4pools()
        alice = controller.start_customer("alice")
        vms = launch_for(env, controller, alice, 3)
        assert alice.head_vm is vms[0]
        env.run(until=env.process(iter_rel(controller, vms[0])))
        assert alice.head_vm is vms[1]  # head moves on relinquish


def iter_rel(controller, vm):
    result = yield controller.relinquish(vm)
    return result


class TestStormImpactPerCustomer:
    def test_spread_customers_lose_at_most_their_pool_share(self):
        # Two customers, each spread over medium+large; the medium
        # market spikes: each customer loses exactly one VM to the
        # storm, not their whole fleet.
        from tests.core.test_controller import spiky_trace
        traces = {"m3.medium": spiky_trace("m3.medium", 0.07),
                  "m3.large": quiet_trace("m3.large", 0.14)}
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="2P-ML",
                            return_to_spot=False), traces=traces)
        alice = controller.start_customer("alice")
        bob = controller.start_customer("bob")
        alice_vms = launch_for(env, controller, alice, 2)
        bob_vms = launch_for(env, controller, bob, 2)
        env.run(until=SPIKE_START + 600.0)
        for vms in (alice_vms, bob_vms):
            displaced = [vm for vm in vms
                         if vm.host.instance.market.value == "on-demand"]
            assert len(displaced) == 1
            assert all(vm.state is VMState.RUNNING for vm in vms)
