"""Tests for the revocation predictor and the knee bid policy."""

import pytest

from repro.cloud.instance_types import M3_CATALOG
from repro.core.config import SpotCheckConfig
from repro.core.policies.bidding import KneeBidPolicy, make_bid_policy
from repro.core.policies.prediction import (
    PredictionStats,
    RevocationPredictor,
)
from repro.traces.archive import PriceTrace

MEDIUM = M3_CATALOG.get("m3.medium")
POOL = ("spot", "m3.medium", "z1")


class TestRevocationPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            RevocationPredictor(level_fraction=0.0)
        with pytest.raises(ValueError):
            RevocationPredictor(jump_factor=1.0)
        with pytest.raises(ValueError):
            RevocationPredictor(ewma_alpha=0.0)

    def test_quiet_market_never_fires(self):
        predictor = RevocationPredictor()
        fired = [predictor.observe(POOL, t * 300.0, 0.02, bid=0.07)
                 for t in range(200)]
        assert not any(fired)

    def test_level_signal_fires_near_bid(self):
        predictor = RevocationPredictor(level_fraction=0.75)
        assert not predictor.observe(POOL, 0.0, 0.04, bid=0.07)
        assert predictor.observe(POOL, 300.0, 0.055, bid=0.07)

    def test_momentum_signal_fires_on_jump(self):
        predictor = RevocationPredictor(jump_factor=2.0)
        for t in range(10):
            predictor.observe(POOL, t * 300.0, 0.02, bid=0.07)
        assert predictor.observe(POOL, 3000.0, 0.045, bid=0.07)

    def test_above_bid_is_not_a_prediction(self):
        predictor = RevocationPredictor()
        assert not predictor.observe(POOL, 0.0, 0.10, bid=0.07)

    def test_holdoff_suppresses_repeat_signals(self):
        predictor = RevocationPredictor(level_fraction=0.5, holdoff_s=3600.0)
        assert predictor.observe(POOL, 0.0, 0.05, bid=0.07)
        assert not predictor.observe(POOL, 600.0, 0.05, bid=0.07)
        assert predictor.observe(POOL, 4000.0, 0.05, bid=0.07)

    def test_pools_independent(self):
        predictor = RevocationPredictor(level_fraction=0.5)
        other = ("spot", "m3.large", "z1")
        assert predictor.observe(POOL, 0.0, 0.05, bid=0.07)
        assert predictor.observe(other, 0.0, 0.10, bid=0.14)

    def test_stats_precision_recall(self):
        stats = PredictionStats()
        assert stats.precision == 0.0 and stats.recall == 0.0
        predictor = RevocationPredictor()
        predictor.record_outcome(True)
        predictor.record_outcome(False)
        predictor.record_outcome(True, had_signal=False)
        assert predictor.stats.precision == pytest.approx(0.5)
        assert predictor.stats.recall == pytest.approx(0.5)


class TestKneeBidPolicy:
    def _trace(self, steps):
        times = [t for t, _ in steps]
        prices = [p for _, p in steps]
        return PriceTrace(times, prices, "m3.medium", "z1", 0.07)

    def test_without_history_falls_back_to_on_demand(self):
        policy = KneeBidPolicy()
        assert policy.bid_for(MEDIUM) == pytest.approx(0.07)

    def test_knee_sits_below_on_demand(self):
        # Price spends 99.9% of time at 0.02 with brief spikes to 0.3:
        # a bid just above 0.02 already buys the availability target.
        steps = []
        t = 0.0
        for _ in range(100):
            steps.append((t, 0.021))
            t += 9990.0
            steps.append((t, 0.30))
            t += 10.0
        policy = KneeBidPolicy(availability_target=0.99)
        bid = policy.bid_for(MEDIUM, trace=self._trace(steps))
        assert 0.02 < bid < 0.07  # "slightly lower than on-demand"

    def test_volatile_market_pushes_knee_to_on_demand(self):
        # Half the time above on-demand: no sub-od bid achieves 99.5%.
        steps = [(i * 100.0, 0.02 if i % 2 else 0.10) for i in range(100)]
        policy = KneeBidPolicy(availability_target=0.995)
        assert policy.bid_for(MEDIUM, trace=self._trace(steps)) == \
            pytest.approx(0.07)

    def test_floor_fraction_respected(self):
        steps = [(0.0, 0.001), (1000.0, 0.001)]
        policy = KneeBidPolicy(availability_target=0.5, floor_fraction=0.3)
        assert policy.bid_for(MEDIUM, trace=self._trace(steps)) >= \
            0.3 * 0.07 - 1e-12

    def test_factory(self):
        assert isinstance(make_bid_policy("knee"), KneeBidPolicy)
        assert not make_bid_policy("knee").allows_proactive

    def test_validation(self):
        with pytest.raises(ValueError):
            KneeBidPolicy(availability_target=0.0)
        with pytest.raises(ValueError):
            KneeBidPolicy(floor_fraction=0.0)

    def test_config_accepts_knee(self):
        SpotCheckConfig(bid_policy="knee")


class TestPredictiveController:
    def test_predictive_drain_avoids_revocation(self):
        from tests.core.test_controller import build, launch_fleet
        from repro.traces.archive import PriceTrace
        # Price ramps up through the predictor's level band before
        # crossing the bid, leaving time for a predictive drain.
        DAY = 24 * 3600.0
        times = [0.0, 40000.0, 47000.0, 54000.0, 61000.0, 75000.0,
                 10 * DAY]
        prices = [0.014, 0.030, 0.055, 0.065, 0.30, 0.014, 0.014]
        trace = PriceTrace(times, prices, "m3.medium", "us-east-1a", 0.07)
        env, api, controller = build(
            SpotCheckConfig(predictive_migration=True,
                            return_to_spot=False),
            traces={"m3.medium": trace})
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=70000.0)
        causes = [m.cause for m in controller.ledger.migrations]
        assert "predictive" in causes
        # The drain happened before the crossing: no bounded migration.
        assert "revocation" not in causes
        assert vm.host.instance.market.value == "on-demand"

    def test_false_positive_returns_to_spot(self):
        from tests.core.test_controller import build, launch_fleet
        from repro.traces.archive import PriceTrace
        DAY = 24 * 3600.0
        # Climbs into the band, then recedes without ever crossing.
        times = [0.0, 40000.0, 47000.0, 54000.0, 10 * DAY]
        prices = [0.014, 0.056, 0.014, 0.014, 0.014]
        trace = PriceTrace(times, prices, "m3.medium", "us-east-1a", 0.07)
        env, api, controller = build(
            SpotCheckConfig(predictive_migration=True,
                            return_holddown_s=600.0),
            traces={"m3.medium": trace})
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=2 * DAY)
        causes = [m.cause for m in controller.ledger.migrations]
        assert "predictive" in causes            # the false positive
        assert "return-to-spot" in causes        # ...and the recovery
        assert vm.host.instance.market.value == "spot"
