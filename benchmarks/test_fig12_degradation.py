"""Figure 12: time under degraded performance during migrations.

Paper shapes: lazy restoration has the highest availability but the
longest degraded periods; the stable 1P-M policy degrades only ~0.02%
of the time and even the worst policy (4P-ED) stays around ~0.25%.
"""

from repro.experiments.policy_grid import figure12_rows, run_grid
from repro.experiments.reporting import format_table
from repro.experiments.scenario import MECHANISMS, POLICIES


def test_fig12_degradation(benchmark, report, bench_days, bench_vms):
    results = benchmark.pedantic(
        lambda: run_grid(seed=11, days=bench_days, vms=bench_vms),
        rounds=1, iterations=1)
    mechanisms, rows = figure12_rows(results)

    degradation = {(p, m): results[(p, m)]["degradation_pct"]
                   for p in POLICIES for m in MECHANISMS}

    # Lazy restore trades downtime for degradation: it degrades longer
    # than full restoration under every policy.
    for policy in POLICIES:
        assert degradation[(policy, "spotcheck-lazy")] >= \
            degradation[(policy, "spotcheck-full")]

    # 1P-M barely degrades; everything stays well below 1%.
    assert degradation[("1P-M", "spotcheck-lazy")] < 0.10
    for policy in POLICIES:
        for mechanism in MECHANISMS:
            assert degradation[(policy, mechanism)] < 1.0

    # The volatile multi-pool policies degrade more than 1P-M.
    assert degradation[("4P-ED", "spotcheck-lazy")] > \
        degradation[("1P-M", "spotcheck-lazy")]

    table_rows = [
        [row["policy"]] + [f"{row[m]:.4f}%" for m in mechanisms]
        for row in rows]
    text = format_table(
        ["policy"] + list(mechanisms), table_rows,
        title=(f"Figure 12 — % of time under degraded performance over "
               f"{bench_days:.0f} days (paper: 0.02% for 1P-M, "
               f"~0.25% worst case)"))
    report("fig12_degradation", text)
