"""Test package."""
