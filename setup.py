"""Setuptools shim.

The evaluation environment is offline and lacks the ``wheel`` package,
so ``pip install -e .`` cannot build the PEP-660 editable wheel.  This
shim lets ``python setup.py develop`` (which pip falls back to) install
the package editable without network access.
"""

from setuptools import setup

setup()
