"""Figure 1: the m1.small spot price fluctuating over ~2.5 days,
spiking far above the $0.06 on-demand price."""

from repro.traces.calibration import M1_SMALL_PARAMS
from repro.traces.generator import TraceGenerator


def run(seed=1, days=30.0, window_days=2.5):
    """Generate a month of m1.small prices and pick the spikiest window.

    Returns a dict with the windowed (times, prices) series, the
    on-demand price, and the peak multiple reached.
    """
    generator = TraceGenerator(seed=seed)
    trace = generator.generate_market(
        "m1.small", "us-east-1a", M1_SMALL_PARAMS,
        duration_s=days * 24 * 3600.0)

    window_s = window_days * 24 * 3600.0
    # Slide a window to find the one containing the largest spike —
    # Figure 1 deliberately shows a dramatic stretch.
    peak_idx = int(trace.prices.argmax())
    peak_time = float(trace.times[peak_idx])
    start = max(trace.start, peak_time - window_s / 2)
    end = min(trace.end, start + window_s)
    windowed = trace.slice(start, end)

    return {
        "times_h": [(t - windowed.start) / 3600.0 for t in windowed.times],
        "prices": list(map(float, windowed.prices)),
        "on_demand_price": trace.on_demand_price,
        "peak_price": float(trace.prices.max()),
        "peak_multiple": float(trace.prices.max() / trace.on_demand_price),
        "window_days": window_days,
    }
