"""Tests for the regime-switching price model."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry
from repro.traces.model import MarketParams, SpotPriceModel

DAY = 24 * 3600.0


def params(**overrides):
    defaults = dict(on_demand_price=0.07)
    defaults.update(overrides)
    return MarketParams(**defaults)


@pytest.fixture
def rng():
    return RngRegistry(5).stream("model-tests")


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            params(on_demand_price=-1)
        with pytest.raises(ValueError):
            params(base_ratio_mean=1.5)
        with pytest.raises(ValueError):
            params(mean_reversion=1.0)
        with pytest.raises(ValueError):
            params(spike_rate_per_hour=-0.1)
        with pytest.raises(ValueError):
            params(spike_multiple_median=0.9)
        with pytest.raises(ValueError):
            params(ratio_floor=0.5, base_ratio_mean=0.2)

    def test_expected_spikes(self):
        p = params(spike_rate_per_hour=0.5)
        assert p.expected_spikes(7200.0) == pytest.approx(1.0)


class TestGeneration:
    def test_prices_positive_and_bounded(self, rng):
        model = SpotPriceModel(params(spike_rate_per_hour=1.0))
        _times, prices = model.generate(rng, 10 * DAY)
        assert (prices > 0).all()
        assert prices.max() <= 0.07 * 100.0 + 1e-9

    def test_times_strictly_sorted(self, rng):
        model = SpotPriceModel(params(spike_rate_per_hour=2.0))
        times, _prices = model.generate(rng, 5 * DAY)
        assert (np.diff(times) >= 0).all()

    def test_no_spikes_stays_below_on_demand(self, rng):
        model = SpotPriceModel(params(spike_rate_per_hour=0.0))
        _times, prices = model.generate(rng, 10 * DAY)
        assert prices.max() < 0.07

    def test_spikes_exceed_on_demand(self, rng):
        model = SpotPriceModel(params(spike_rate_per_hour=0.3))
        _times, prices = model.generate(rng, 20 * DAY)
        assert prices.max() > 0.07  # some spike fired over 20 days

    def test_base_mean_ratio_calibrated(self, rng):
        model = SpotPriceModel(params(
            spike_rate_per_hour=0.0, base_ratio_mean=0.12,
            base_log_volatility=0.03))
        times, prices = model.generate(rng, 60 * DAY)
        from repro.traces.archive import PriceTrace
        trace = PriceTrace(times, prices, "t", "z", 0.07)
        assert trace.time_weighted_mean() / 0.07 == \
            pytest.approx(0.12, rel=0.25)

    def test_start_time_offset(self, rng):
        model = SpotPriceModel(params())
        times, _prices = model.generate(rng, DAY, start_time=1000.0)
        assert times[0] == 1000.0

    def test_deterministic_given_stream(self):
        model = SpotPriceModel(params(spike_rate_per_hour=1.0))
        t1, p1 = model.generate(RngRegistry(3).stream("m"), 3 * DAY)
        t2, p2 = model.generate(RngRegistry(3).stream("m"), 3 * DAY)
        assert np.array_equal(t1, t2) and np.array_equal(p1, p2)

    def test_spike_duration_and_recovery(self, rng):
        # With long spikes and a high rate, the price must spend a
        # nontrivial fraction of time above on-demand and recover below.
        model = SpotPriceModel(params(
            spike_rate_per_hour=0.2, spike_duration_mean_s=3600.0))
        times, prices = model.generate(rng, 30 * DAY)
        above = prices > 0.07
        assert 0.005 < above.mean() < 0.6
        assert not above[-1] or not above[0]

    def test_ratio_floor_respected(self, rng):
        model = SpotPriceModel(params(
            ratio_floor=0.05, base_ratio_mean=0.06,
            base_log_volatility=0.5, spike_rate_per_hour=0.0))
        _times, prices = model.generate(rng, 5 * DAY)
        assert prices.min() >= 0.05 * 0.07 - 1e-12
