"""TPC-W: an interactive multi-tier web application model.

Calibration targets, from the paper:

* baseline average response time 29 ms (Figure 9's zero column);
* +15 % response time when continuous checkpointing turns on
  (Figure 7, column "1");
* roughly +30 % once the backup server saturates around 35-40 VMs
  (Figure 7, column "50");
* ~60 ms during a lazy restore, roughly flat in the number of
  concurrent restores thanks to per-VM bandwidth partitioning
  (Figure 9).
"""

from repro.workloads.base import Workload


class TpcwWorkload(Workload):
    """The TPC-W "ordering workload" (Tomcat + MySQL) model."""

    name = "tpcw"
    write_rate_pages = 800.0
    working_set_fraction = 0.2
    cold_write_fraction = 0.02

    #: Unperturbed mean response time, ms.
    baseline_response_ms = 29.0
    #: Multiplier when continuous checkpointing is active.
    checkpoint_factor = 1.15
    #: Extra response-time fraction per unit of backup write overload.
    overload_sensitivity = 0.70
    #: Multiplier during the lazy-restore degraded window (60/29).
    restore_factor = 60.0 / 29.0
    #: Mild additional penalty per concurrent restore peer; kept small
    #: because the backup server partitions bandwidth per VM.
    restore_concurrency_slope = 0.005

    def response_time_ms(self, conditions):
        """Mean response time under ``conditions``, in milliseconds."""
        response = self.baseline_response_ms
        if conditions.checkpointing:
            response *= self.checkpoint_factor
            response *= 1.0 + (self.overload_sensitivity
                               * conditions.backup_overload)
        if conditions.restoring:
            factor = self.restore_factor
            extra_peers = max(conditions.restore_concurrency - 1, 0)
            factor *= 1.0 + self.restore_concurrency_slope * extra_peers
            response = max(response, self.baseline_response_ms * factor)
        return response

    def performance(self, conditions):
        return self.response_time_ms(conditions)

    def degradation_fraction(self, conditions):
        baseline = self.baseline_response_ms
        return (self.response_time_ms(conditions) - baseline) / baseline
