"""The ``repro bench`` harness: run, serialize, and validate benchmarks.

One :func:`run_bench` call produces a ``repro-bench/1`` payload;
:func:`write_bench` lands it as ``BENCH_<label>.json``.  The schema is
deliberately flat and stable so that successive artifacts (one per
commit, uploaded by CI) can be diffed and plotted as a performance
trajectory: kernel events/sec must not regress, grid speedup must hold.
"""

import json
import os
import sys
import time

from repro.benchmarking.grid import measure_cell, measure_grid
from repro.benchmarking.kernel import measure_kernel
from repro.experiments.scenario import MECHANISMS, POLICIES

#: Current artifact schema identifier.
BENCH_SCHEMA = "repro-bench/1"

#: Preset for the seconds-scale CI smoke benchmark.
SMOKE_PRESET = {
    "kernel_events": 150_000,
    "policies": ("1P-M", "4P-ED"),
    "mechanisms": ("spotcheck-lazy", "xen-live"),
    "days": 2.0,
    "vms": 4,
    "workers": 2,
    "cell_days": 2.0,
    "cell_vms": 4,
}

#: Preset for a full local benchmark run.
FULL_PRESET = {
    "kernel_events": 1_000_000,
    "policies": POLICIES,
    "mechanisms": MECHANISMS,
    "days": 14.0,
    "vms": 10,
    "workers": 4,
    "cell_days": 14.0,
    "cell_vms": 10,
}


def run_bench(label="local", smoke=False, seed=11, workers=None, days=None,
              vms=None, kernel_events=None, echo=None):
    """Run the kernel, cell, and grid benchmarks; returns the payload."""
    preset = dict(SMOKE_PRESET if smoke else FULL_PRESET)
    if workers is not None:
        preset["workers"] = workers
    if days is not None:
        preset["days"] = preset["cell_days"] = days
    if vms is not None:
        preset["vms"] = preset["cell_vms"] = vms
    if kernel_events is not None:
        preset["kernel_events"] = kernel_events

    def say(message):
        if echo is not None:
            echo(message)

    say(f"kernel: {preset['kernel_events']} events x3 ...")
    kernel = measure_kernel(events=preset["kernel_events"])
    say(f"  {kernel['events_per_sec']:.0f} events/sec")

    say(f"cell: 1P-M/spotcheck-lazy, {preset['cell_days']:.0f} days, "
        f"{preset['cell_vms']} VMs ...")
    cell = measure_cell(seed=seed, days=preset["cell_days"],
                        vms=preset["cell_vms"])
    say(f"  {cell['wall_s']:.2f}s")

    grid_shape = (f"{len(preset['policies'])}x{len(preset['mechanisms'])} "
                  f"grid, {preset['days']:.0f} days, {preset['vms']} VMs, "
                  f"{preset['workers']} workers")
    say(f"grid: serial vs parallel vs warm ({grid_shape}) ...")
    grid = measure_grid(policies=preset["policies"],
                        mechanisms=preset["mechanisms"], seed=seed,
                        days=preset["days"], vms=preset["vms"],
                        workers=preset["workers"])
    say(f"  serial {grid['serial_wall_s']:.2f}s  parallel "
        f"{grid['parallel_wall_s']:.2f}s (x{grid['speedup']:.2f})  warm "
        f"{grid['warm_wall_s']:.2f}s (x{grid['warm_speedup']:.2f})")

    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "smoke": bool(smoke),
        "created_unix": time.time(),
        "host": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "kernel": kernel,
        "cell": cell,
        "grid": grid,
    }


def bench_filename(label):
    safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in label)
    return f"BENCH_{safe}.json"


def write_bench(payload, out_dir="."):
    """Validate and write ``BENCH_<label>.json``; returns the path."""
    validate_bench(payload)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, bench_filename(payload["label"]))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _require(payload, dotted, kinds):
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise ValueError(f"bench payload missing {dotted!r}")
        node = node[part]
    if not isinstance(node, kinds) or isinstance(node, bool):
        raise ValueError(
            f"bench payload field {dotted!r} has type "
            f"{type(node).__name__}, expected {kinds}")
    return node


def validate_bench(payload):
    """Check a payload against the ``repro-bench/1`` schema.

    Raises ``ValueError`` on any missing field, wrong type, or
    non-positive timing; returns the payload for chaining.
    """
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a dict")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unknown bench schema {payload.get('schema')!r}, "
            f"expected {BENCH_SCHEMA!r}")
    _require(payload, "label", str)
    if not isinstance(payload.get("smoke"), bool):
        raise ValueError("bench payload field 'smoke' must be a bool")
    _require(payload, "created_unix", (int, float))
    _require(payload, "host.cpu_count", int)
    for field in ("kernel.events", "kernel.wall_s", "kernel.events_per_sec",
                  "cell.wall_s", "grid.cells", "grid.serial_wall_s",
                  "grid.parallel_wall_s", "grid.warm_wall_s", "grid.speedup",
                  "grid.warm_speedup", "grid.workers", "grid.cache.misses",
                  "grid.cache.memory_hits", "grid.cache.disk_hits",
                  "grid.cache.executed", "grid.cache.warm_disk_hits",
                  "grid.cache.warm_misses"):
        value = _require(payload, field, (int, float))
        if value < 0:
            raise ValueError(f"bench payload field {field!r} is negative")
    for field in ("kernel.events_per_sec", "grid.speedup",
                  "grid.warm_speedup"):
        if _require(payload, field, (int, float)) <= 0:
            raise ValueError(f"bench payload field {field!r} must be > 0")
    return payload


def validate_bench_file(path):
    """Load and validate one ``BENCH_*.json``; returns the payload."""
    with open(path) as handle:
        return validate_bench(json.load(handle))
