"""Tests for the instance-type catalog."""

import pytest

from repro.cloud.errors import NotFound
from repro.cloud.instance_types import (
    DEFAULT_CATALOG,
    M3_CATALOG,
    M3_FAMILY,
    InstanceType,
    InstanceTypeCatalog,
)


class TestInstanceType:
    def test_paper_prices(self):
        # Prices the paper quotes explicitly.
        assert M3_CATALOG.get("m3.medium").on_demand_price == 0.070
        assert M3_CATALOG.get("m3.xlarge").on_demand_price == 0.28
        assert DEFAULT_CATALOG.get("m1.small").on_demand_price == 0.06

    def test_memory_bytes(self):
        itype = M3_CATALOG.get("m3.large")
        assert itype.memory_bytes == int(7.5 * 1024 ** 3)

    def test_unit_price_monotone_family(self):
        # m3 family prices are proportional to RAM (paper: "pricing of
        # on-demand servers is roughly proportional to their resource
        # allotment").
        unit_prices = [t.unit_price() for t in M3_FAMILY]
        assert max(unit_prices) - min(unit_prices) < 1e-9

    def test_str(self):
        assert str(M3_CATALOG.get("m3.medium")) == "m3.medium"


class TestCatalog:
    def test_lookup_unknown_raises(self):
        with pytest.raises(NotFound):
            M3_CATALOG.get("z9.mega")

    def test_contains(self):
        assert "m3.medium" in M3_CATALOG
        assert "m1.small" not in M3_CATALOG

    def test_duplicate_rejected(self):
        dup = InstanceType("x", 1, 1.0, 0.1)
        with pytest.raises(ValueError):
            InstanceTypeCatalog([dup, dup])

    def test_hvm_filter(self):
        hvm_names = {t.name for t in DEFAULT_CATALOG.hvm_types()}
        assert "m3.medium" in hvm_names
        assert "m1.small" not in hvm_names  # PV-only, unusable by XenBlanket

    def test_len_and_iter(self):
        assert len(M3_CATALOG) == 4
        assert sorted(t.name for t in M3_CATALOG) == [
            "m3.2xlarge", "m3.large", "m3.medium", "m3.xlarge"]


class TestSlicing:
    def test_medium_slices(self):
        medium = M3_CATALOG.get("m3.medium")
        options = dict(M3_CATALOG.slicing_options(medium))
        assert options[M3_CATALOG.get("m3.medium")] == 1
        assert options[M3_CATALOG.get("m3.large")] == 2
        assert options[M3_CATALOG.get("m3.xlarge")] == 4

    def test_max_factor_respected(self):
        medium = M3_CATALOG.get("m3.medium")
        options = dict(M3_CATALOG.slicing_options(medium, max_factor=4))
        # m3.2xlarge could hold 8 mediums; excluded by the factor cap.
        assert M3_CATALOG.get("m3.2xlarge") not in options

    def test_larger_request_fits_fewer(self):
        xlarge = M3_CATALOG.get("m3.xlarge")
        options = dict(M3_CATALOG.slicing_options(xlarge))
        assert options[M3_CATALOG.get("m3.xlarge")] == 1
        assert M3_CATALOG.get("m3.medium") not in options

    def test_non_hvm_excluded(self):
        small = DEFAULT_CATALOG.get("m1.small")
        options = DEFAULT_CATALOG.slicing_options(small)
        assert all(itype.hvm for itype, _slots in options)
