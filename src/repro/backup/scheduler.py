"""Restore scheduling on a backup server.

During a revocation storm a backup server must restore many nested VMs
at once.  The scheduler partitions read bandwidth equally among the
restores in flight (the paper's per-VM ``tc`` throttling: "restoring
one VM does not negatively affect the performance of VMs using the
same backup server") and exposes both analytic batch estimates (used by
the Figure 8/9 benches) and a DES execution path.

The DES path runs every restore as flows on the server's shared
fair-share datapath, so batches launched by *different* revocations
contend with each other (and with checkpoint commits) the moment they
overlap, and an early finisher's bandwidth is released to the
survivors.  For an isolated batch of equal-size images the measured
durations reproduce the analytic ``n * image / aggregate`` estimates
exactly — the closed forms below remain as cross-checks.
"""

#: Execution-resume overhead after the skeleton lands ("restoration
#: time <0.1 seconds" — the non-transfer part).
RESUME_OVERHEAD_S = 0.05

#: Default skeleton size; kept equal to
#: :data:`repro.virt.migration.restore.SKELETON_BYTES` (not imported at
#: module level — ``repro.virt`` imports this module back).
_SKELETON_BYTES = 5 * 1024 ** 2


class RestoreScheduler:
    """Plans and executes batches of concurrent restores."""

    def __init__(self, server):
        self.server = server

    # -- analytic estimates (Figures 8 and 9) ---------------------------

    def full_restore_downtime_s(self, image_bytes, concurrent, optimized):
        """Downtime of each VM in a batch of ``concurrent`` full restores.

        Stop-and-copy restoration reads the whole image before the VM
        can run; with the aggregate sequential read path shared, each
        of n concurrent restores takes n * image / aggregate.
        """
        if concurrent < 1:
            raise ValueError("concurrency must be at least 1")
        aggregate = self.server.spec.full_restore_aggregate_bps(optimized)
        return concurrent * image_bytes / aggregate

    def lazy_restore_degraded_s(self, image_bytes, concurrent, optimized):
        """Length of the degraded period of each VM in a lazy batch.

        The VM resumes almost immediately from the skeleton; the
        degraded period lasts until the whole image has been paged in
        by the demand + background-prefetch readers.
        """
        if concurrent < 1:
            raise ValueError("concurrency must be at least 1")
        aggregate = self.server.spec.lazy_restore_aggregate_bps(
            concurrent, optimized)
        return concurrent * image_bytes / aggregate

    def lazy_restore_downtime_s(self, skeleton_bytes=_SKELETON_BYTES,
                                concurrent=1):
        """Downtime of a lazy restore: loading the skeleton state only.

        The skeleton (~5 MB of vCPU state and page tables) moves over
        the network share; execution resumes the moment it lands —
        the paper reports restoration time "<0.1 seconds" plus the
        transfer.
        """
        share = self.server.spec.net_bps / max(concurrent, 1)
        return skeleton_bytes / share + RESUME_OVERHEAD_S

    # -- DES execution ----------------------------------------------------

    def run_batch(self, env, restores, kind, optimized):
        """DES process: restore ``restores`` VMs concurrently.

        ``restores`` is a list of ``(vm, image_bytes)`` pairs.  Returns
        per-VM ``(downtime_s, degraded_s)`` tuples in input order.  The
        restores run as datapath flows, so concurrency is whatever is
        actually in flight on the server — including restores from
        other batches and checkpoint commits — not the batch size.
        Raises :class:`~repro.backup.server.BackupUnavailable` if the
        server has failed.
        """
        from repro.virt.migration.restore import SKELETON_BYTES
        from repro.virt.vm import VMState

        results = [None] * len(restores)

        def _one(index, vm, image_bytes):
            token = self.server.begin_restore()
            started = env.now
            try:
                if kind == "full":
                    vm.set_state(VMState.SUSPENDED)
                    yield self.server.restore_read_flow(
                        image_bytes, "full", optimized)
                    vm.set_state(VMState.RUNNING)
                    results[index] = (env.now - started, 0.0)
                elif kind == "lazy":
                    vm.set_state(VMState.SUSPENDED)
                    yield self.server.skeleton_flow(SKELETON_BYTES)
                    yield env.timeout(RESUME_OVERHEAD_S)
                    downtime = env.now - started
                    vm.set_state(VMState.RESTORING)
                    yield self.server.restore_read_flow(
                        image_bytes, "lazy", optimized)
                    vm.set_state(VMState.RUNNING)
                    results[index] = (downtime, env.now - started - downtime)
                else:
                    raise ValueError(f"unknown restore kind {kind!r}")
            finally:
                self.server.end_restore(token)

        def _batch():
            procs = [env.process(_one(i, vm, size))
                     for i, (vm, size) in enumerate(restores)]
            yield env.all_of(procs)
            return results

        return env.process(_batch())
