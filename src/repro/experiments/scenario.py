"""The trace-driven policy simulation behind Figures 10-12 and Table 3.

One :class:`PolicySimulation` builds the whole stack — environment,
native cloud, six months of synthetic m3 price traces, SpotCheck
controller with a chosen (allocation policy, migration mechanism) — and
runs a fixed fleet of nested VMs through it, returning the accounting
summary.  The paper's grid is 5 policies x 4 mechanisms over the same
six-month price history; we reuse one trace archive per seed so every
cell of the grid sees identical prices.
"""

from dataclasses import dataclass, field, replace

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.faults import FaultInjector, FaultPlan
from repro.sim.kernel import Environment
from repro.traces.archive import TraceArchive
from repro.traces.calibration import M3_MARKET_PARAMS
from repro.traces.generator import TraceGenerator
from repro.virt.migration.bounded import BoundedMigrationConfig
from repro.workloads import SpecJbbWorkload, TpcwWorkload

#: The four mechanism variants of Figures 10-12, in plot order.
MECHANISMS = (
    "xen-live",
    "unoptimized-full",
    "spotcheck-full",
    "spotcheck-lazy",
)

#: The five Table 2 policies, in plot order.
POLICIES = ("1P-M", "2P-ML", "4P-ED", "4P-COST", "4P-ST")


def mechanism_config(name):
    """Map a Figure 10-12 legend entry onto controller settings.

    Returns ``(BoundedMigrationConfig | None, live_only: bool)``.
    """
    if name == "xen-live":
        return BoundedMigrationConfig.spotcheck_lazy(), True
    if name == "unoptimized-full":
        return BoundedMigrationConfig.yank_baseline(), False
    if name == "spotcheck-full":
        return BoundedMigrationConfig.spotcheck_full(), False
    if name == "unoptimized-lazy":
        return BoundedMigrationConfig.unoptimized_lazy(), False
    if name == "spotcheck-lazy":
        return BoundedMigrationConfig.spotcheck_lazy(), False
    raise ValueError(f"unknown mechanism {name!r}")


@dataclass
class ScenarioConfig:
    """Parameters of one policy-simulation run."""

    policy: str = "1P-M"
    mechanism: str = "spotcheck-lazy"
    seed: int = 11
    days: float = 183.0
    vms: int = 40
    workload: str = "tpcw"
    bid_policy: str = "on-demand"
    bid_multiple: float = 1.5
    hot_spares: int = 0
    use_staging: bool = False
    proactive: bool = False
    predictive: bool = False
    slicing: bool = True
    zones: int = 1
    vms_per_backup: int = 40
    #: Optional keyword overrides for the IT/OC portfolio allocation
    #: family (``target_ratio``, ``band_fraction``, ``top_k``, ...);
    #: ignored for other policies.
    portfolio: dict = None
    market_params: dict = field(default_factory=lambda: dict(M3_MARKET_PARAMS))
    #: Optional :class:`~repro.faults.FaultPlan`.  ``None`` (or a plan
    #: with everything zeroed) runs the platform fault-free and
    #: bit-identical to a build without the fault layer.
    faults: FaultPlan = None
    #: Optional :class:`~repro.traffic.engine.TrafficMix`.  When set,
    #: the fleet is split into one customer per traffic group
    #: (largest-remainder by weight), a TrafficEngine scores each
    #: group's SLA live, and the summary gains an ``"sla"`` section.
    #: ``None`` keeps the single-customer fleet bit-identical to a
    #: build without the traffic layer.
    traffic: object = None

    @property
    def duration_s(self):
        return self.days * 24 * 3600.0


def make_workload(name):
    if name == "tpcw":
        return TpcwWorkload()
    if name == "specjbb":
        return SpecJbbWorkload()
    raise ValueError(f"unknown workload {name!r}")


class PolicySimulation:
    """Builds and runs one cell of the policy/mechanism grid."""

    def __init__(self, config=None, archive=None):
        self.config = config or ScenarioConfig()
        self._archive = archive

    @staticmethod
    def build_archive(seed, duration_s, market_params=None, zones=1):
        """m3 traces for one seed (shared across a grid), per zone."""
        params = market_params or M3_MARKET_PARAMS
        generator = TraceGenerator(seed=seed)
        region = default_region(zones)
        archive = TraceArchive()
        for zone in region.zones:
            for type_name, market in sorted(params.items()):
                archive.add(generator.generate_market(
                    type_name, zone.name, market, duration_s=duration_s))
        return archive

    def run(self, return_controller=False, obs=None, probes=()):
        """Execute the scenario; returns the accounting summary dict.

        With ``return_controller=True``, returns
        ``(summary, controller)`` so callers can inspect per-VM state
        (e.g. request-level SLA analysis over the VM state logs).
        With ``obs`` (a :class:`repro.obs.Observability`), the run is
        instrumented: events, metrics, and migration traces accumulate
        on the facade for the caller to export.  ``probes`` are
        callables ``probe(env, controller)`` invoked after the fleet
        is up and before the main horizon runs — samplers register
        their own processes there (the cost-variance study's hourly
        fleet-rate sampler rides on this).
        """
        cfg = self.config
        env = Environment(seed=cfg.seed, obs=obs)
        region = default_region(cfg.zones)
        injector = None
        if cfg.faults is not None and cfg.faults.enabled:
            injector = FaultInjector(env, cfg.faults)
        api = CloudApi(env, region, M3_CATALOG, faults=injector)
        archive = self._archive
        if archive is None:
            archive = self.build_archive(
                cfg.seed, cfg.duration_s, cfg.market_params,
                zones=cfg.zones)

        mech, live_only = mechanism_config(cfg.mechanism)
        controller = SpotCheckController(env, api, SpotCheckConfig(
            allocation_policy=cfg.policy,
            bid_policy=cfg.bid_policy,
            bid_multiple=cfg.bid_multiple,
            mechanism=mech,
            live_migration_only=live_only,
            hot_spares=cfg.hot_spares,
            use_staging=cfg.use_staging,
            proactive_migration=cfg.proactive,
            predictive_migration=cfg.predictive,
            slicing=cfg.slicing,
            vms_per_backup=cfg.vms_per_backup,
            portfolio=cfg.portfolio,
        ))
        controller.install_pools(archive, list(region.zones))
        if injector is not None:
            injector.install_backup_crashes(controller)

        engine = None
        if cfg.traffic is not None:
            from repro.traffic import TrafficEngine
            engine = TrafficEngine(
                env, obs=obs,
                report_interval_s=cfg.traffic.report_interval_s)
            controller.attach_traffic(engine)

        def _fleet():
            if cfg.traffic is None:
                groups = [(None, "fleet", cfg.vms)]
            else:
                counts = cfg.traffic.allocate_vms(cfg.vms)
                groups = [(group, group.name, count) for group, count
                          in zip(cfg.traffic.groups, counts)]
            for group, name, count in groups:
                customer = controller.start_customer(name, traffic=group)
                for _ in range(count):
                    yield controller.request_server(
                        customer, workload=make_workload(cfg.workload))

        env.run(until=env.process(_fleet()))
        if engine is not None:
            # SLA windows anchor at fleet-ready time: boot-time churn
            # is provisioning, not broken promises to live traffic.
            engine.start(until=cfg.duration_s)
        for probe in probes:
            probe(env, controller)
        env.run(until=cfg.duration_s)
        controller.finalize()
        summary = controller.summary(total_vms=cfg.vms)
        summary["policy"] = cfg.policy
        summary["mechanism"] = cfg.mechanism
        summary["backup_servers"] = controller.backup_pool.server_count
        if injector is not None:
            # Only under injection, so fault-free summaries stay
            # bit-identical to a build without the fault layer.
            summary["faults_injected"] = injector.total_injected
            summary["faults_by_kind"] = dict(injector.counts)
        if engine is not None:
            summary["sla"] = engine.report()
            summary["traffic_drive"] = engine.drive_stats()
        if return_controller:
            return summary, controller
        return summary

    def variant(self, **overrides):
        """A copy of this scenario with fields replaced."""
        return PolicySimulation(
            replace(self.config, **overrides), archive=self._archive)
