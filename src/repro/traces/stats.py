"""Trace statistics: the three views of the paper's Figure 6.

* :func:`availability_cdf` — Fig 6a: for each bid expressed as a
  fraction of the on-demand price, the fraction of time the market
  price sat at or below the bid (i.e. the availability a bidder at that
  level would have seen).
* :func:`price_jump_cdf` — Fig 6b: the distribution of hour-over-hour
  percentage price changes, split into increases and decreases.
* :func:`correlation_matrix` — Figs 6c/6d: Pearson correlation of
  hourly price series across zones or types.
"""

import numpy as np


def resample_hourly(trace, horizon=None, step_s=3600.0):
    """Sample a trace's step function onto a regular grid.

    Returns (grid_times, prices-at-grid).
    """
    horizon = trace.end if horizon is None else float(horizon)
    if horizon <= trace.start:
        raise ValueError("horizon precedes the start of the trace")
    grid = np.arange(trace.start, horizon, step_s)
    idx = np.searchsorted(trace.times, grid, side="right") - 1
    idx = np.clip(idx, 0, len(trace.prices) - 1)
    return grid, trace.prices[idx]


def availability_at_bid(trace, bid, horizon=None):
    """Fraction of time the market price was at or below ``bid``.

    This is exactly the availability a spot instance bid at ``bid``
    would have seen (ignoring migration downtime): the paper derives
    the revocation probability "from the cumulative distribution shown
    in Figure 6(a)".
    """
    durations = trace.durations(horizon)
    total = durations.sum()
    if total == 0:
        return 1.0 if trace.prices[-1] <= bid else 0.0
    return float(durations[trace.prices <= bid].sum() / total)


def availability_cdf(trace, ratios=None, horizon=None):
    """Fig 6a: availability as a function of bid / on-demand ratio.

    Returns ``(ratios, availability)`` arrays.
    """
    if ratios is None:
        ratios = np.linspace(0.0, 1.0, 101)
    ratios = np.asarray(ratios, dtype=float)
    durations = trace.durations(horizon)
    total = durations.sum()
    price_ratios = trace.ratios()
    availability = np.empty_like(ratios)
    for i, ratio in enumerate(ratios):
        if total == 0:
            availability[i] = 1.0 if price_ratios[-1] <= ratio else 0.0
        else:
            availability[i] = durations[price_ratios <= ratio].sum() / total
    return ratios, availability


def price_jump_cdf(trace, horizon=None, step_s=3600.0):
    """Fig 6b: CDFs of hourly percentage price increases and decreases.

    Returns ``(increases, decreases)``: sorted arrays of positive
    percentage magnitudes (a 2x hourly jump reports as 100.0).
    """
    _grid, prices = resample_hourly(trace, horizon=horizon, step_s=step_s)
    if len(prices) < 2:
        return np.array([]), np.array([])
    changes = 100.0 * (prices[1:] - prices[:-1]) / prices[:-1]
    increases = np.sort(changes[changes > 0])
    decreases = np.sort(-changes[changes < 0])
    return increases, decreases


def correlation_matrix(traces, horizon=None, step_s=3600.0):
    """Figs 6c/6d: pairwise Pearson correlation of hourly prices.

    Parameters
    ----------
    traces:
        Sequence of traces; all are resampled onto the grid of the
        shortest one.

    Returns
    -------
    (keys, matrix):
        ``keys[i]`` is the (type, zone) key of row/column ``i``.
    """
    traces = list(traces)
    if len(traces) < 2:
        raise ValueError("need at least two traces to correlate")
    if horizon is None:
        # Step functions extend forward, so the longest trace sets the
        # common grid; shorter traces hold their last price.
        horizon = max(t.end for t in traces)
        if horizon <= max(t.start for t in traces):
            horizon = max(t.start for t in traces) + step_s
    series = []
    for trace in traces:
        _grid, prices = resample_hourly(trace, horizon=horizon, step_s=step_s)
        series.append(prices)
    length = min(len(s) for s in series)
    stacked = np.vstack([s[:length] for s in series])
    # (Near-)constant series have no meaningful variance; corrcoef
    # would emit NaN or rounding noise.  The threshold is relative to
    # the series magnitude to absorb mean-subtraction float error.
    stds = stacked.std(axis=1)
    matrix = np.eye(len(traces))
    variable = stds > 1e-9 * np.maximum(np.abs(stacked).max(axis=1), 1e-30)
    if variable.sum() >= 2:
        sub = np.corrcoef(stacked[variable])
        idx = np.flatnonzero(variable)
        for a, i in enumerate(idx):
            for b, j in enumerate(idx):
                matrix[i, j] = sub[a, b]
    return [t.key for t in traces], matrix


def mean_price(trace, horizon=None):
    """Time-average price over the trace."""
    return trace.time_weighted_mean(horizon)


def spike_count(trace, threshold_ratio=1.0):
    """Number of upward crossings of ``threshold_ratio`` x on-demand."""
    return len(trace.crossings_above(threshold_ratio * trace.on_demand_price))


def summarize(trace, horizon=None):
    """One-line summary statistics for reports."""
    ratios = trace.ratios()
    return {
        "market": trace.key,
        "points": len(trace),
        "mean_price": mean_price(trace, horizon),
        "mean_ratio": mean_price(trace, horizon) / trace.on_demand_price,
        "max_ratio": float(ratios.max()),
        "availability_at_od": availability_at_bid(
            trace, trace.on_demand_price, horizon),
        "spikes_above_od": spike_count(trace),
    }
