"""Regions and availability zones.

Spot prices are set per (instance type, availability zone) market; the
paper's Figure 6(c) shows that prices across 18 zones are uncorrelated,
which SpotCheck's pool policies exploit to diversify revocation risk.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Zone:
    """An availability zone within a region."""

    name: str
    region_name: str

    def __str__(self):
        return self.name


@dataclass
class Region:
    """A region containing one or more availability zones."""

    name: str
    zones: list = field(default_factory=list)

    @classmethod
    def with_zones(cls, name, count):
        """Build a region with ``count`` zones named ``<name><letter>``."""
        if count < 1:
            raise ValueError(f"a region needs at least one zone, got {count}")
        letters = "abcdefghijklmnopqrstuvwxyz"
        if count > len(letters):
            raise ValueError(f"at most {len(letters)} zones supported")
        region = cls(name=name)
        region.zones = [Zone(f"{name}{letters[i]}", name)
                        for i in range(count)]
        return region

    def zone(self, name):
        """Return the zone called ``name``."""
        for zone in self.zones:
            if zone.name == name:
                return zone
        raise KeyError(f"no zone {name!r} in region {self.name}")

    def __iter__(self):
        return iter(self.zones)

    def __len__(self):
        return len(self.zones)


#: The region used by default in experiments (mirrors us-east-1's size
#: at the time of the paper's study).
def default_region(zone_count=4):
    """A ``us-east-1``-like region with ``zone_count`` zones."""
    return Region.with_zones("us-east-1", zone_count)
