"""Native-server placement: which type backs a nested-VM request.

Section 4.2's arbitrage insight: "the server size-to-price ratio is not
uniform: a large server ... which is able to accommodate two medium VM
servers ... may be cheaper than buying two medium servers."  The greedy
policy picks the cheapest current price per nested-VM slot; the
conservative policy picks the market with the most stable recent
prices.  Slicing a large server concentrates risk (one revocation
displaces every resident nested VM), which is why both policies are
offered.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PlacementChoice:
    """Outcome of a placement decision."""

    itype: object
    zone: object
    slots: int
    price_per_slot: float

    @property
    def sliced(self):
        return self.slots > 1


class _PlacementPolicy:
    """Shared slicing-option enumeration."""

    def __init__(self, catalog, max_slice_factor=4):
        self.catalog = catalog
        self.max_slice_factor = max_slice_factor

    def _options(self, requested, markets):
        """Yield (itype, zone, slots, market) placement options.

        ``markets`` maps (type_name, zone_name) -> SpotMarket.
        """
        slicable = dict(self.catalog.slicing_options(
            requested, self.max_slice_factor))
        for (type_name, _zone_name), market in markets.items():
            itype = self.catalog.get(type_name)
            slots = slicable.get(itype)
            if slots:
                yield itype, market.zone, slots, market

    def choose(self, requested, markets):
        raise NotImplementedError


class GreedyCheapestFirst(_PlacementPolicy):
    """Pick the option with the lowest current price per slot."""

    def choose(self, requested, markets):
        best = None
        for itype, zone, slots, market in self._options(requested, markets):
            price_per_slot = market.current_price() / slots
            if best is None or price_per_slot < best.price_per_slot:
                best = PlacementChoice(itype=itype, zone=zone, slots=slots,
                                       price_per_slot=price_per_slot)
        if best is None:
            raise ValueError(
                f"no market can host a {requested.name} nested VM")
        return best


class StabilityFirst(_PlacementPolicy):
    """Pick the market with the most stable recent prices.

    "The more volatile the prices of a particular spot server type, the
    greater the chance of a price spike, and the higher the frequency
    of revocations."  Stability is measured as the coefficient of
    variation of the market's recent price history.
    """

    def __init__(self, catalog, max_slice_factor=4, window_s=7 * 24 * 3600.0):
        super().__init__(catalog, max_slice_factor)
        self.window_s = window_s

    def _volatility(self, market, now):
        times, prices = market.trace.arrays()
        lo = np.searchsorted(times, now - self.window_s)
        hi = np.searchsorted(times, now, side="right")
        window = prices[max(lo, 0):max(hi, 1)]
        if len(window) < 2:
            return 0.0
        mean = window.mean()
        return float(window.std() / mean) if mean > 0 else 0.0

    def choose(self, requested, markets, now=None):
        best = None
        best_rank = None
        for itype, zone, slots, market in self._options(requested, markets):
            when = market.env.now if now is None else now
            volatility = self._volatility(market, when)
            price_per_slot = market.current_price() / slots
            # Equal-stability markets are ranked by current price per
            # slot (never ignore an obviously cheaper option), then by
            # market key so the choice is independent of dict order.
            rank = (volatility, price_per_slot, (itype.name, zone.name))
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = PlacementChoice(
                    itype=itype, zone=zone, slots=slots,
                    price_per_slot=price_per_slot)
        if best is None:
            raise ValueError(
                f"no market can host a {requested.name} nested VM")
        return best
