"""SpotCheck: the derivative-cloud controller and its policies.

The controller (:mod:`.controller`) is the paper's main contribution:
it rents spot and on-demand servers from the native platform, slices
them into nested VMs, sells those to customers as *non-revocable*
servers, and masks spot revocations with bounded-time migrations to
backup-protected destinations.  Pool management (:mod:`.pools`,
:mod:`.policies`) balances the three competing goals of Section 4 —
maximize availability, reduce revocation risk, minimize cost.
"""

from repro.core.accounting import AccountingLedger
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.core.customer import Customer

__all__ = [
    "AccountingLedger",
    "Customer",
    "SpotCheckConfig",
    "SpotCheckController",
]
