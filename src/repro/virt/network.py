"""A max-min fair-shared network link for the simulation kernel.

Checkpoint streams, migrations and restores all contend for host (or
backup-server) bandwidth.  ``FairShareLink`` models a single bottleneck
shared equally among active flows, with optional per-flow rate caps —
the analogue of SpotCheck's ``tc``-based per-VM throttling, which it
uses "to avoid affecting nested VMs that are not migrating".

The link is event-driven: whenever a flow joins or leaves, remaining
transfer times of the other flows are re-planned.  Progress accounting
is exact for the equal-share discipline.
"""


class _Flow:
    def __init__(self, env, size_bytes, rate_cap):
        self.env = env
        self.remaining = float(size_bytes)
        self.rate_cap = rate_cap
        self.done = env.event()
        self.started_at = env.now


class FairShareLink:
    """A shared link of fixed capacity with max-min fair allocation.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity_bps:
        Link capacity in *bytes* per second.
    """

    def __init__(self, env, capacity_bps):
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = float(capacity_bps)
        self._flows = []
        self._last_update = env.now
        self._wakeup = None

    @property
    def active_flows(self):
        return len(self._flows)

    def transfer(self, size_bytes, rate_cap=None):
        """Start a transfer; returns an event that fires on completion.

        ``rate_cap`` bounds this flow's share (bytes/s), modelling the
        per-VM ``tc`` throttle.
        """
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError("rate cap must be positive")
        self._advance()
        flow = _Flow(self.env, size_bytes, rate_cap)
        self._flows.append(flow)
        self._replan()
        return flow.done

    def current_rate(self, rate_cap=None):
        """The rate a hypothetical new flow would receive right now."""
        shares = self._fair_shares(self._flows + [_FakeFlow(rate_cap)])
        return shares[-1]

    # -- internals -------------------------------------------------------

    def _fair_shares(self, flows):
        """Max-min fair allocation with per-flow caps (water-filling)."""
        n = len(flows)
        if n == 0:
            return []
        shares = [0.0] * n
        remaining_capacity = self.capacity
        unfixed = list(range(n))
        while unfixed:
            level = remaining_capacity / len(unfixed)
            capped = [i for i in unfixed
                      if flows[i].rate_cap is not None
                      and flows[i].rate_cap < level]
            if not capped:
                for i in unfixed:
                    shares[i] = level
                break
            for i in capped:
                shares[i] = flows[i].rate_cap
                remaining_capacity -= flows[i].rate_cap
                unfixed.remove(i)
        return shares

    #: Flows within this many bytes of completion are done.  Transfer
    #: sizes are ~1e8 bytes, so float64 progress arithmetic leaves
    #: residues up to ~1e-8 bytes; a smaller threshold would re-plan a
    #: completion time below the clock's resolution and spin forever.
    _DONE_EPSILON_BYTES = 1e-6

    def _advance(self):
        """Credit progress since the last event to all active flows."""
        elapsed = self.env.now - self._last_update
        self._last_update = self.env.now
        if not self._flows:
            return
        if elapsed > 0:
            shares = self._fair_shares(self._flows)
            for flow, rate in zip(self._flows, shares):
                flow.remaining -= rate * elapsed
        finished = [flow for flow in self._flows
                    if flow.remaining <= self._DONE_EPSILON_BYTES]
        for flow in finished:
            self._flows.remove(flow)
            flow.done.succeed(self.env.now - flow.started_at)

    def _replan(self):
        """Schedule a wakeup at the next flow-completion time."""
        if self._wakeup is not None and self._wakeup.is_alive:
            self._wakeup.interrupt()
            self._wakeup = None
        if not self._flows:
            return
        shares = self._fair_shares(self._flows)
        next_done = min(
            flow.remaining / rate
            for flow, rate in zip(self._flows, shares) if rate > 0)
        # Never plan a wakeup below the clock's float resolution.
        next_done = max(next_done, 1e-9 * max(self.env.now, 1.0))
        self._wakeup = self.env.process(self._sleep_then_settle(next_done))

    def _sleep_then_settle(self, delay):
        from repro.sim.errors import Interrupt
        try:
            yield self.env.timeout(delay)
        except Interrupt:
            return
        self._advance()
        self._replan()


class _FakeFlow:
    def __init__(self, rate_cap):
        self.rate_cap = rate_cap
