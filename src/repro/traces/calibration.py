"""Calibrated market parameters reproducing the paper's price study.

The numbers below are chosen so that six-month synthetic traces match
the shapes the paper reports:

* m3.medium is "highly stable" — a handful of spikes over six months,
  giving the 1P-M policy its 99.999 %-class availability, and a mean
  price around $0.008/hr so that SpotCheck's all-in cost (spot + the
  ~$0.007 amortized backup share) lands near the paper's ~$0.015/hr,
  i.e. ~5x below the $0.07 on-demand price.
* The larger m3 types are progressively more volatile (several spikes
  per day), driving the availability spread across the 2P/4P policies.
* Direct spot availability at a bid equal to the on-demand price falls
  between 90 % and 99.97 % depending on the type (Fig 6a's "between
  90 % and 99 %" band for the volatile types).
"""

from repro.traces.model import MarketParams

#: Six months of hours (183 days), the paper's study span.
SIX_MONTHS_HOURS = 183 * 24.0

#: Per-type parameters for the m3 family (US-East on-demand prices).
M3_MARKET_PARAMS = {
    "m3.medium": MarketParams(
        on_demand_price=0.070,
        base_ratio_mean=0.115,
        base_log_volatility=0.04,
        mean_reversion=0.97,
        spike_rate_per_hour=8 / SIX_MONTHS_HOURS,
        spike_multiple_median=5.0,
        spike_multiple_sigma=1.0,
        spike_duration_mean_s=700.0,
    ),
    "m3.large": MarketParams(
        on_demand_price=0.140,
        base_ratio_mean=0.135,
        base_log_volatility=0.06,
        mean_reversion=0.97,
        spike_rate_per_hour=350 / SIX_MONTHS_HOURS,
        spike_multiple_median=4.0,
        spike_multiple_sigma=1.2,
        spike_duration_mean_s=900.0,
    ),
    "m3.xlarge": MarketParams(
        on_demand_price=0.280,
        base_ratio_mean=0.155,
        base_log_volatility=0.07,
        mean_reversion=0.96,
        spike_rate_per_hour=250 / SIX_MONTHS_HOURS,
        spike_multiple_median=3.5,
        spike_multiple_sigma=1.2,
        spike_duration_mean_s=1100.0,
    ),
    "m3.2xlarge": MarketParams(
        on_demand_price=0.560,
        base_ratio_mean=0.175,
        base_log_volatility=0.08,
        mean_reversion=0.96,
        spike_rate_per_hour=450 / SIX_MONTHS_HOURS,
        spike_multiple_median=3.0,
        spike_multiple_sigma=1.3,
        spike_duration_mean_s=1000.0,
    ),
}

#: Figure 1's market: m1.small spiking to ~80x its $0.06 on-demand price.
M1_SMALL_PARAMS = MarketParams(
    on_demand_price=0.060,
    base_ratio_mean=0.13,
    base_log_volatility=0.05,
    mean_reversion=0.97,
    spike_rate_per_hour=0.04,
    spike_multiple_median=20.0,
    spike_multiple_sigma=1.1,
    spike_multiple_max=100.0,
    spike_duration_mean_s=2400.0,
)

#: Extra volatility multiplier applied per non-m3 family for the
#: Fig 6a 90-99 % availability spread (spike rate scale, duration scale).
_FAMILY_VOLATILITY = {
    "m1": (3.0, 2.5),
    "m2": (2.0, 2.0),
    "c3": (4.0, 3.0),
    "r3": (2.5, 2.5),
}


def market_params_for(itype, volatility_scale=1.0, duration_scale=1.0):
    """Parameters for any catalog type.

    m3 types use the hand-calibrated table; other families derive from
    a size-graded template scaled by their family volatility so the
    cross-type study (Fig 6d) spans the 90-99 % availability band.
    """
    if itype.name in M3_MARKET_PARAMS:
        base = M3_MARKET_PARAMS[itype.name]
        if volatility_scale == 1.0 and duration_scale == 1.0:
            return base
        return MarketParams(
            on_demand_price=base.on_demand_price,
            base_ratio_mean=base.base_ratio_mean,
            base_log_volatility=base.base_log_volatility,
            mean_reversion=base.mean_reversion,
            spike_rate_per_hour=base.spike_rate_per_hour * volatility_scale,
            spike_multiple_median=base.spike_multiple_median,
            spike_multiple_sigma=base.spike_multiple_sigma,
            spike_multiple_max=base.spike_multiple_max,
            spike_duration_mean_s=base.spike_duration_mean_s * duration_scale,
        )
    family = itype.name.split(".")[0]
    rate_scale, dwell_scale = _FAMILY_VOLATILITY.get(family, (2.0, 2.0))
    rate_scale *= volatility_scale
    dwell_scale *= duration_scale
    return MarketParams(
        on_demand_price=itype.on_demand_price,
        base_ratio_mean=min(0.12 + 0.02 * itype.vcpus ** 0.5, 0.45),
        base_log_volatility=0.06,
        mean_reversion=0.965,
        spike_rate_per_hour=(120 / SIX_MONTHS_HOURS) * rate_scale,
        spike_multiple_median=4.0,
        spike_multiple_sigma=1.2,
        spike_duration_mean_s=1200.0 * dwell_scale,
    )


def paper_market_set(types, zones, zone_jitter=0.25):
    """Build the ``(type, zone) -> MarketParams`` map for a market set.

    Zones get a deterministic +-``zone_jitter`` relative tweak to their
    spike rate (derived from the zone name) so that markets differ
    without sharing any randomness — cross-zone correlation stays ~0
    because each trace draws from its own RNG stream.
    """
    params = {}
    for itype in types:
        for index, zone in enumerate(zones):
            scale = 1.0 + zone_jitter * ((index % 3) - 1)
            params[(itype.name, zone.name)] = market_params_for(
                itype, volatility_scale=scale)
    return params
