"""Tests for the checkpoint store and restore scheduler."""

import pytest

from repro.backup.scheduler import RestoreScheduler
from repro.backup.server import BackupServer
from repro.backup.store import CheckpointStore
from repro.cloud.instance_types import M3_CATALOG
from repro.virt.vm import NestedVM, VMState
from repro.workloads import TpcwWorkload

GiB = 1024 ** 3


class TestCheckpointStore:
    def test_open_and_seed(self, env):
        store = CheckpointStore(env)
        record = store.open_image("vm-1", GiB)
        assert not record.is_complete
        store.seed_full_image("vm-1")
        assert record.is_complete
        assert record.commits == 1

    def test_double_open_rejected(self, env):
        store = CheckpointStore(env)
        store.open_image("vm-1", GiB)
        with pytest.raises(ValueError):
            store.open_image("vm-1", GiB)

    def test_dirty_then_commit_cycle(self, env):
        store = CheckpointStore(env)
        store.open_image("vm-1", GiB)
        store.seed_full_image("vm-1")
        store.mark_dirty("vm-1", 50e6)
        assert not store.image("vm-1").is_complete
        store.commit("vm-1", 50e6)
        assert store.image("vm-1").is_complete

    def test_commit_never_negative(self, env):
        store = CheckpointStore(env)
        store.open_image("vm-1", GiB)
        store.mark_dirty("vm-1", 10.0)
        store.commit("vm-1", 100.0)
        assert store.image("vm-1").outstanding_bytes == 0.0

    def test_close_image(self, env):
        store = CheckpointStore(env)
        store.open_image("vm-1", GiB)
        assert "vm-1" in store
        store.close_image("vm-1")
        assert "vm-1" not in store
        assert store.close_image("vm-1") is None

    def test_missing_image_raises(self, env):
        with pytest.raises(KeyError):
            CheckpointStore(env).image("ghost")

    def test_total_bytes(self, env):
        store = CheckpointStore(env)
        for i, size in enumerate((GiB, 2 * GiB)):
            store.open_image(f"vm-{i}", size)
            store.seed_full_image(f"vm-{i}")
        assert store.total_bytes() == 3 * GiB

    def test_no_state_loss_when_committed(self, env):
        store = CheckpointStore(env)
        store.open_image("vm-1", GiB)
        store.seed_full_image("vm-1")
        store.mark_dirty("vm-1", 5.0)
        assert store.state_loss_events() == []


class TestRestoreScheduler:
    def test_full_downtime_scales_with_concurrency(self, env):
        scheduler = RestoreScheduler(BackupServer(env))
        d1 = scheduler.full_restore_downtime_s(GiB, 1, True)
        d5 = scheduler.full_restore_downtime_s(GiB, 5, True)
        assert d5 == pytest.approx(5 * d1)

    def test_lazy_downtime_is_skeleton_scale(self, env):
        scheduler = RestoreScheduler(BackupServer(env))
        assert scheduler.lazy_restore_downtime_s(concurrent=1) < 0.5

    def test_validation(self, env):
        scheduler = RestoreScheduler(BackupServer(env))
        with pytest.raises(ValueError):
            scheduler.full_restore_downtime_s(GiB, 0, True)
        with pytest.raises(ValueError):
            scheduler.lazy_restore_degraded_s(GiB, 0, True)

    def test_des_batch_full_restores(self, env):
        server = BackupServer(env)
        scheduler = RestoreScheduler(server)
        itype = M3_CATALOG.get("m3.medium")
        vms = [NestedVM(env, itype, workload=TpcwWorkload())
               for _ in range(3)]
        batch = scheduler.run_batch(
            env, [(vm, GiB) for vm in vms], "full", True)
        results = env.run(until=batch)
        expected = scheduler.full_restore_downtime_s(GiB, 3, True)
        for downtime, degraded in results:
            assert downtime == pytest.approx(expected)
            assert degraded == 0.0
        assert all(vm.state is VMState.RUNNING for vm in vms)
        assert server.active_restores == 0

    def test_des_batch_lazy_restores_track_states(self, env):
        server = BackupServer(env)
        scheduler = RestoreScheduler(server)
        itype = M3_CATALOG.get("m3.medium")
        vm = NestedVM(env, itype, workload=TpcwWorkload())
        batch = scheduler.run_batch(env, [(vm, GiB)], "lazy", True)
        [(downtime, degraded)] = env.run(until=batch)
        assert downtime < 1.0
        assert degraded == pytest.approx(
            scheduler.lazy_restore_degraded_s(GiB, 1, True), rel=0.01)
        states = [state for _t, state in vm.state_log]
        assert VMState.SUSPENDED in states
        assert VMState.RESTORING in states

    def test_des_unknown_kind_fails(self, env):
        scheduler = RestoreScheduler(BackupServer(env))
        itype = M3_CATALOG.get("m3.medium")
        vm = NestedVM(env, itype)
        batch = scheduler.run_batch(env, [(vm, GiB)], "warp", True)
        with pytest.raises(ValueError):
            env.run(until=batch)
