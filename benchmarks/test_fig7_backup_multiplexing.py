"""Figure 7: nested-VM performance vs VMs per backup server.

Paper shapes: turning checkpointing on costs TPC-W ~15% response time
and SpecJBB nothing; performance holds until ~35 VMs share one backup
server, then drops — roughly 30% for both at 50 VMs.  The knee is why
"SpotCheck assigns at most 35-40 VMs per backup server", making the
amortized backup cost ~$0.007/VM-hr.
"""

import pytest

from repro.backup.server import BackupServerSpec
from repro.experiments import fig7
from repro.experiments.reporting import format_table


def test_fig7_backup_multiplexing(benchmark, report):
    result = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    rows = {row["vms"]: row for row in result["rows"]}

    # Checkpointing-on overhead (column 0 -> 1).
    assert rows[1]["tpcw"] == pytest.approx(rows[0]["tpcw"] * 1.15, rel=0.02)
    assert rows[1]["specjbb"] == pytest.approx(rows[0]["specjbb"], rel=0.01)

    # Flat until the knee...
    assert rows[30]["tpcw"] == pytest.approx(rows[1]["tpcw"], rel=0.02)
    # ...then significant degradation by 50 VMs (~30% each).
    assert rows[50]["tpcw"] > rows[1]["tpcw"] * 1.12
    assert rows[50]["specjbb"] < rows[1]["specjbb"] * 0.80

    knee = fig7.knee_vms(result, "specjbb")
    assert 25 <= knee <= 45

    # The cost consequence the paper draws from the knee.
    assert BackupServerSpec().amortized_cost_per_vm(40) == \
        pytest.approx(0.007)

    table_rows = [
        (row["vms"], f"{row['tpcw']:.1f}",
         f"{100 * row['tpcw_degradation']:.0f}%",
         f"{row['specjbb']:.0f}",
         f"{100 * row['specjbb_degradation']:.0f}%")
        for row in result["rows"]]
    text = format_table(
        ["VMs/backup", "TPC-W resp (ms)", "TPC-W degr",
         "SpecJBB (bops)", "SpecJBB degr"],
        table_rows,
        title=("Figure 7 — backup-server multiplexing "
               f"(knee at {knee} VMs; streams "
               f"{result['tpcw_stream_mbps']:.1f}/"
               f"{result['specjbb_stream_mbps']:.1f} MB/s vs "
               f"{result['write_path_mbps']:.0f} MB/s write path)"))
    report("fig7_backup_multiplexing", text)
