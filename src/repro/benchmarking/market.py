"""Market-drive microbenchmark: per-step replay vs threshold skipping.

The same stack — one calibrated 14-day trace, one :class:`SpotMarket`,
a fleet of registered spot instances, one crossing watch at the
on-demand boundary — is driven twice.  The *stepped* run pins the
drive to the per-point path with a no-op step listener (the legacy
behaviour, and still the behaviour of any observed or
predictor-enabled run); the *indexed* run leaves only crossing
thresholds active, so the drive sleeps straight between them.  Both
runs must warn and terminate the identical instances; the payoff is
the kernel-event count, reported as ``events_eliminated`` and the
per-mode ``events_per_sec`` in the bench artifact.
"""

import time

from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Instance, Market
from repro.cloud.spot_market import PriceWatch, SpotMarket
from repro.cloud.zones import default_region
from repro.experiments.scenario import PolicySimulation
from repro.sim.kernel import Environment
from repro.traces.calibration import M3_MARKET_PARAMS


def _drive_once(trace, itype, seed, bids, stepped):
    env = Environment(seed=seed)
    zone = default_region(1).zones[0]
    market = SpotMarket(env, itype, zone, trace)
    if stepped:
        market.on_price_change(lambda market, price: None)
    else:
        # The controller's park/unpark logic watches the on-demand
        # boundary; a crossing watch there keeps the indexed run
        # honest about the wake-ups a real simulation needs.
        market.add_watch(
            PriceWatch(lambda market, price: None,
                       lo=trace.on_demand_price))
    fleet = []
    for bid in bids:
        instance = Instance(env, itype, zone, Market.SPOT, bid=bid)
        instance._mark_running()
        market.register(instance)
        fleet.append(instance)
    started = time.perf_counter()
    env.run()
    wall = time.perf_counter() - started
    # Keyed by fleet position, not instance id — the id counter is
    # process-global and the two runs share a process.
    outcome = [(i, instance.state.value) for i, instance in enumerate(fleet)]
    return wall, market.drive_stats(), outcome


def measure_market_drive(days=14.0, seed=11, instances=10,
                         type_name="m3.medium"):
    """Benchmark one market's drive, stepped vs indexed.

    Returns a dict with the trace size, per-mode wall clock and drive
    counters, the derived ``events_eliminated`` / ``event_reduction``
    / ``speedup``, and per-mode ``events_per_sec`` (trace points
    retired per wall-clock second — the indexed drive retires skipped
    points for free, which is the entire point).  Raises
    ``AssertionError`` if the two modes revoke different instances.
    """
    archive = PolicySimulation.build_archive(
        seed, days * 24 * 3600.0, market_params=M3_MARKET_PARAMS, zones=1)
    itype = M3_CATALOG.get(type_name)
    zone = default_region(1).zones[0]
    trace = archive.get(type_name, zone.name)
    # Bids straddling the observed price range: the low bids get
    # revoked by spikes mid-trace, the high ones survive to the end.
    low = float(trace.prices.min())
    high = float(trace.prices.max())
    bids = [low + (high - low) * (i + 1) / (instances + 1)
            for i in range(instances)]

    stepped_wall, stepped_stats, stepped_outcome = _drive_once(
        trace, itype, seed, bids, stepped=True)
    indexed_wall, indexed_stats, indexed_outcome = _drive_once(
        trace, itype, seed, bids, stepped=False)
    if indexed_outcome != stepped_outcome:
        raise AssertionError(
            "indexed market drive revoked different instances than the "
            "stepped drive")

    points = len(trace)
    return {
        "trace_points": points,
        "days": days,
        "seed": seed,
        "instances": instances,
        "type": type_name,
        "stepped": {
            "wall_s": stepped_wall,
            "wakes": stepped_stats["wakes"],
            "delivered": stepped_stats["delivered"],
            "events_per_sec": points / stepped_wall,
        },
        "indexed": {
            "wall_s": indexed_wall,
            "wakes": indexed_stats["wakes"],
            "delivered": indexed_stats["delivered"],
            "rearms": indexed_stats["rearms"],
            "stale_skips": indexed_stats["stale_skips"],
            "events_per_sec": points / indexed_wall,
        },
        "events_eliminated": (
            stepped_stats["delivered"] - indexed_stats["delivered"]),
        "event_reduction": (
            stepped_stats["delivered"] / max(indexed_stats["delivered"], 1)),
        "speedup": stepped_wall / indexed_wall,
    }
