"""Plain-text renderers for every experiment (used by the CLI/runner).

Each ``render_*`` function runs its experiment at full paper scale and
returns ``(title, text_table, notes)`` where *notes* compares the
measured headline against the paper's.
"""

import numpy as np

from repro.experiments import fig1, fig6, fig7, fig8, fig9, table1, table3
from repro.experiments.policy_grid import (
    figure10_rows,
    figure11_rows,
    figure12_rows,
    run_grid,
)
from repro.experiments.reporting import format_table

SIX_MONTHS_S = 183 * 24 * 3600.0


def render_fig1(seed=1):
    result = fig1.run(seed=seed, days=30)
    xs, ys = result["times_h"], result["prices"]
    step = max(len(xs) // 30, 1)
    sampled = list(zip(xs[::step], ys[::step]))
    # Decimation must not hide the spike the figure exists to show.
    peak_index = max(range(len(ys)), key=lambda i: ys[i])
    sampled.append((xs[peak_index], ys[peak_index]))
    sampled.sort()
    rows = [(f"{x:.1f}", f"{y:.3f}") for x, y in sampled]
    text = format_table(["hour", "price $/hr"], rows)
    notes = (f"peak ${result['peak_price']:.2f}/hr = "
             f"{result['peak_multiple']:.0f}x the $0.06 on-demand price "
             f"(paper's Figure 1 shows spikes to ~$5/hr, ~83x)")
    return "Figure 1 — m1.small spot price", text, notes


def render_table1(seed=20140401):
    result = table1.run(seed=seed)
    rows = [(row["operation"], f"{row['median']:.1f}", f"{row['mean']:.1f}",
             f"{row['max']:.1f}", f"{row['min']:.1f}",
             f"{row['paper'].median}/{row['paper'].mean}"
             f"/{row['paper'].max}/{row['paper'].min}")
            for row in result["rows"]]
    text = format_table(
        ["operation", "median", "mean", "max", "min", "paper"], rows)
    notes = (f"mean migration downtime "
             f"{result['migration_downtime_mean']:.2f}s (paper: 22.65s)")
    return "Table 1 — EC2 operation latencies (s)", text, notes


def render_fig6(seed=6):
    curves = fig6.availability_cdfs(seed=seed)
    rows = [(name,
             f"{curve['availability_at_od']:.4f}",
             f"{curve['mean_ratio']:.3f}")
            for name, curve in curves.items()]
    text = format_table(
        ["type", "availability @ od bid", "mean spot/od ratio"], rows)
    jumps = fig6.price_jumps(seed=seed)
    zones = fig6.zone_correlations(seed=seed, zones=18,
                                   duration_s=SIX_MONTHS_S / 3)
    types = fig6.type_correlations(seed=seed, duration_s=SIX_MONTHS_S / 3)
    notes = (f"(b) max hourly jump {jumps['max_increase_pct']:.0f}% "
             f"({jumps['orders_of_magnitude']:.1f} orders of magnitude); "
             f"(c) |corr| <= {zones['max_offdiag']:.3f} across 18 zones; "
             f"(d) |corr| <= {types['max_offdiag']:.3f} across 15 types "
             f"(paper: long-tailed CDF, jumps to 1e4+%, ~zero "
             f"correlations)")
    return "Figure 6 — spot-price dynamics", text, notes


def render_fig7():
    result = fig7.run()
    rows = [(row["vms"], f"{row['tpcw']:.1f}", f"{row['specjbb']:.0f}")
            for row in result["rows"]]
    text = format_table(
        ["VMs/backup", "TPC-W resp (ms)", "SpecJBB (bops)"], rows)
    knee = fig7.knee_vms(result)
    notes = (f"knee at {knee} VMs per backup server "
             f"(paper: 35-40); +15% TPC-W with checkpointing on, "
             f"~30% degradation at 50 VMs")
    return "Figure 7 — backup-server multiplexing", text, notes


def render_fig8():
    result = fig8.run(use_des=False)
    rows = [(n,
             f"{fig8.pick(result, n, 'full', False):.0f}",
             f"{fig8.pick(result, n, 'full', True):.0f}",
             f"{fig8.pick(result, n, 'lazy', False):.0f}",
             f"{fig8.pick(result, n, 'lazy', True):.0f}")
            for n in (1, 5, 10)]
    text = format_table(
        ["concurrent", "full unopt", "full opt", "lazy unopt", "lazy opt"],
        rows)
    notes = ("unoptimized lazy restore collapses at 10 concurrent "
             "(random-read thrash); the fadvise optimization keeps it "
             "linear — the paper's Figure 8(b) shape")
    return "Figure 8 — restore durations (s)", text, notes


def render_fig9():
    result = fig9.run()
    rows = [(row["concurrent"], f"{row['response_ms']:.1f}")
            for row in result["rows"]]
    text = format_table(["concurrent restores", "TPC-W resp (ms)"], rows)
    notes = "29 ms normal -> ~60 ms restoring, flat in concurrency (paper)"
    return "Figure 9 — response time during lazy restore", text, notes


def _render_grid(metric_rows, results, unit):
    mechanisms, rows = metric_rows(results)
    table_rows = [[row["policy"]] + [unit.format(row[m])
                                     for m in mechanisms] for row in rows]
    return format_table(["policy"] + list(mechanisms), table_rows)


def render_fig10(seed=11, days=183.0, vms=40, workers=1, cache_dir=None):
    results = run_grid(seed=seed, days=days, vms=vms, workers=workers,
                       cache_dir=cache_dir)
    text = _render_grid(figure10_rows, results, "${:.4f}")
    one_pool = results[("1P-M", "spotcheck-lazy")]["cost_per_vm_hour"]
    notes = (f"1P-M SpotCheck: ${one_pool:.4f}/VM-hr vs $0.07 on-demand "
             f"= {0.07 / one_pool:.1f}x saving (paper: ~$0.015, ~5x)")
    return "Figure 10 — average cost per VM-hour", text, notes


def render_fig11(seed=11, days=183.0, vms=40, workers=1, cache_dir=None):
    results = run_grid(seed=seed, days=days, vms=vms, workers=workers,
                       cache_dir=cache_dir)
    text = _render_grid(figure11_rows, results, "{:.4f}%")
    availability = results[("1P-M", "spotcheck-lazy")]["availability"]
    notes = (f"1P-M SpotCheck availability {100 * availability:.4f}% "
             f"(paper: 99.9989%); state-loss events: "
             f"{results[('1P-M', 'spotcheck-lazy')]['state_loss_events']}")
    return "Figure 11 — unavailability (%)", text, notes


def render_fig12(seed=11, days=183.0, vms=40, workers=1, cache_dir=None):
    results = run_grid(seed=seed, days=days, vms=vms, workers=workers,
                       cache_dir=cache_dir)
    text = _render_grid(figure12_rows, results, "{:.4f}%")
    worst = max(results[(p, "spotcheck-lazy")]["degradation_pct"]
                for p in ("1P-M", "2P-ML", "4P-ED", "4P-COST", "4P-ST"))
    notes = (f"worst-case degraded time {worst:.3f}% of the period "
             f"(paper: 0.02% for 1P-M, ~0.25% worst case)")
    return "Figure 12 — degraded-performance time (%)", text, notes


def render_table3(seed=11, days=183.0, vms=40):
    result = table3.run(seed=seed, days=days, vms=vms)
    rows = []
    for label in ("1-Pool", "2-Pool", "4-Pool"):
        histogram = result["table"][label]
        rows.append([label] + [
            "0" if histogram[b] == 0 else f"{histogram[b]:.2e}"
            for b in (0.25, 0.5, 0.75, 1.0)])
    text = format_table(
        ["pools", "P(max=N/4)", "P(max=N/2)", "P(max=3N/4)", "P(max=N)"],
        rows)
    notes = ("only the single-pool policy ever loses all N VMs at once; "
             "four pools eliminate mass revocations (paper's Table 3 "
             "shape)")
    return "Table 3 — concurrent-revocation probability per hour", \
        text, notes


#: Experiment name -> renderer.
RENDERERS = {
    "fig1": render_fig1,
    "table1": render_table1,
    "fig6": render_fig6,
    "fig7": render_fig7,
    "fig8": render_fig8,
    "fig9": render_fig9,
    "fig10": render_fig10,
    "fig11": render_fig11,
    "fig12": render_fig12,
    "table3": render_table3,
}
