"""Host VMs and the nested hypervisor (the XenBlanket layer).

A :class:`HostVM` pairs one native instance with a
:class:`NestedHypervisor` that slices it into nested-VM slots.  Slicing
is how SpotCheck arbitrages non-uniform size-to-price ratios: a
m3.large host can hold two m3.medium nested VMs, and is sometimes
cheaper than two m3.medium spot servers.
"""

from repro.virt.network import FairShareLink
from repro.virt.vm import VMState


class NestedHypervisor:
    """The nested hypervisor installed on a host VM.

    Parameters
    ----------
    env:
        Simulation environment.
    host_itype:
        The native instance type underneath.
    slot_itype:
        The advertised nested-VM type each slot holds.
    slots:
        Number of nested-VM slots carved from the host.
    """

    def __init__(self, env, host_itype, slot_itype, slots=1):
        if slots < 1:
            raise ValueError("a hypervisor needs at least one slot")
        needed_gib = slot_itype.memory_gib * slots
        if needed_gib > host_itype.memory_gib:
            raise ValueError(
                f"{slots}x {slot_itype.name} does not fit in "
                f"{host_itype.name} ({needed_gib} > {host_itype.memory_gib} GiB)")
        if slot_itype.vcpus * slots > host_itype.vcpus:
            raise ValueError(
                f"{slots}x {slot_itype.name} exceeds {host_itype.name} vCPUs")
        self.env = env
        self.host_itype = host_itype
        self.slot_itype = slot_itype
        self.slots = slots
        self.vms = []
        #: Slots promised to in-flight migrations; counted as occupied
        #: so concurrent migrations cannot race for the same slot.
        self.reserved = 0
        #: Optional callback fired after any slot-occupancy mutation
        #: (reserve/cancel/consume/evict).  Pools use it to keep their
        #: aggregate counters and free-slot index current without
        #: scanning hosts.
        self.on_change = None
        #: Host NIC shared by checkpoint streams and migrations.
        self.link = FairShareLink(
            env, capacity_bps=host_itype.network_gbps * 125e6)

    @property
    def free_slots(self):
        return self.slots - len(self.vms) - self.reserved

    def reserve_slot(self):
        """Promise a slot to an in-flight migration."""
        if self.free_slots <= 0:
            raise ValueError("no slot available to reserve")
        self.reserved += 1
        if self.on_change is not None:
            self.on_change()

    def cancel_reservation(self):
        """Return an unused reservation."""
        self.reserved = max(self.reserved - 1, 0)
        if self.on_change is not None:
            self.on_change()

    def _consume_slot(self, vm):
        if self.reserved > 0:
            self.reserved -= 1
        elif self.free_slots <= 0:
            raise ValueError(f"no free slot for {vm.id}")
        self.vms.append(vm)
        if self.on_change is not None:
            self.on_change()

    def boot(self, vm):
        """Place a nested VM into a free (or reserved) slot, start it."""
        if vm.itype.name != self.slot_itype.name:
            raise ValueError(
                f"{vm.id} is {vm.itype.name}; this hypervisor slices "
                f"{self.slot_itype.name} slots")
        self._consume_slot(vm)
        vm.set_state(VMState.RUNNING)

    def attach(self, vm):
        """Place a migrated-in nested VM without changing its state."""
        self._consume_slot(vm)

    def evict(self, vm):
        """Remove a nested VM (migrated away or terminated)."""
        if vm in self.vms:
            self.vms.remove(vm)
            if self.on_change is not None:
                self.on_change()


class HostVM:
    """One rented native instance running the nested hypervisor."""

    def __init__(self, env, instance, slot_itype, slots=1):
        self.env = env
        self.instance = instance
        self.hypervisor = NestedHypervisor(
            env, instance.itype, slot_itype, slots=slots)
        #: ENIs reserved for nested-VM addresses (one per slot, plus the
        #: host's default interface which is not modelled here).
        self.interfaces = []
        #: Backref stamped by :meth:`repro.core.pools.ServerPool.add_host`
        #: so ``PoolManager.pool_of_host`` is O(1).
        self._pool = None

    @property
    def id(self):
        return self.instance.id

    @property
    def itype(self):
        return self.instance.itype

    @property
    def zone(self):
        return self.instance.zone

    @property
    def vms(self):
        return self.hypervisor.vms

    @property
    def free_slots(self):
        return self.hypervisor.free_slots

    @property
    def link(self):
        return self.hypervisor.link

    def __repr__(self):
        return (f"<HostVM {self.id} {self.itype.name} "
                f"{len(self.vms)}/{self.hypervisor.slots} slots>")
