"""Process-based fan-out and on-disk caching for the policy grid.

The paper's headline evaluation is a 5-policy x 4-mechanism grid over
six months of prices; every cell is an independent simulation, so the
grid is embarrassingly parallel.  This module supplies the three pieces
``repro.experiments.policy_grid.run_grid(workers=N)`` composes:

``config_hash``
    A stable content hash of a :class:`ScenarioConfig` — the key for
    the persistent cell cache.  Hashes are computed from a canonical
    JSON form, so they survive process boundaries and interpreter
    restarts (unlike ``hash()``/``id()``-based keys).

``CellDiskCache``
    A directory of pickled cell summaries keyed by ``config_hash``.
    Repeated ``repro report`` runs skip every completed cell.  Pickle
    (not JSON) because summaries carry float-keyed histograms and enum
    cost breakdowns that JSON would silently mangle.

``run_cells_parallel``
    Dispatches cells to a ``ProcessPoolExecutor``.  Each worker rebuilds
    its environment from the pickled :class:`ScenarioConfig` and loads
    the shared price-trace archive once per process from an ``.npz``
    file (see :meth:`repro.traces.archive.TraceArchive.save_npz`), so
    six months of prices are generated exactly once, in the parent.

Determinism: a cell's RNG streams are seeded only by its config, and
the npz archive round-trip is bit-exact, so parallel summaries are
identical to serial ones — ``run_grid(workers=4)`` must and does equal
``run_grid(workers=1)``.
"""

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import re
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import asdict

from repro.experiments.scenario import PolicySimulation, ScenarioConfig
from repro.traces.archive import TraceArchive
from repro.traces.model import MarketParams

#: Bump when the summary contents change shape, so stale cache entries
#: from an older code version are never returned.
CACHE_VERSION = 6

#: Reprs like ``<object object at 0x7f3a2c1b9e40>`` embed ``id()``, which
#: differs per process — hashing one silently defeats the cache.
_ADDRESS_REPR = re.compile(r"0x[0-9a-fA-F]{6,}")


def _canonical_default(value):
    """Canonicalize config values ``json.dumps`` can't handle natively.

    Known container/scalar types get a stable, process-independent form.
    Anything else falls back to ``repr`` — but an address-bearing repr
    (the ``id()``-embedding kind) is rejected loudly instead of
    poisoning the cache key with a per-process value.
    """
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return asdict(value)
    if hasattr(value, "item") and hasattr(value, "dtype"):
        # numpy scalar: unwrap to the native Python value.
        return value.item()
    if hasattr(value, "tolist") and hasattr(value, "dtype"):
        return value.tolist()
    text = repr(value)
    if _ADDRESS_REPR.search(text):
        raise ValueError(
            f"config field of type {type(value).__name__} has an "
            f"address-bearing repr ({text!r}); its cache key would "
            "differ per process. Give it a stable canonical form.")
    return text


def config_canonical(config):
    """The canonical JSON text a config is hashed from."""
    payload = asdict(config)
    payload["__cache_version__"] = CACHE_VERSION
    return json.dumps(payload, sort_keys=True, default=_canonical_default)


def config_hash(config):
    """Stable hex digest identifying one cell's full configuration."""
    return hashlib.sha256(
        config_canonical(config).encode("utf-8")).hexdigest()


def archive_hash(seed, days, zones, market_params):
    """Stable digest identifying one shared trace archive."""
    payload = json.dumps(
        {"seed": seed, "days": days, "zones": zones,
         "market_params": {name: asdict(params) for name, params
                           in sorted(market_params.items())}},
        sort_keys=True, default=_canonical_default)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CellDiskCache:
    """Persistent cell-summary cache: one pickle per config hash."""

    def __init__(self, directory):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._sweep_orphans()

    def _sweep_orphans(self):
        """Remove ``*.tmp.<pid>`` files left behind by killed writers.

        ``put`` stages through a pid-suffixed temp file before the
        atomic rename; a run killed mid-write leaves the temp behind
        forever.  Only files whose writer pid is provably dead are
        removed — a live writer's staging file must not be yanked.
        """
        for name in os.listdir(self.directory):
            base, sep, pid_text = name.rpartition(".tmp.")
            if not sep or not pid_text.isdigit():
                continue
            pid = int(pid_text)
            if pid == os.getpid():
                continue
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, OverflowError):
                pass  # dead writer (or pid beyond pid_t): safe to sweep
            except PermissionError:
                continue  # alive, just not ours
            else:
                continue  # alive
            try:
                os.unlink(os.path.join(self.directory, name))
            except OSError:
                pass

    def _path(self, config):
        return os.path.join(self.directory, f"{config_hash(config)}.pkl")

    def get(self, config):
        """The cached summary for ``config``, or ``None``."""
        path = self._path(config)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError):
            # A truncated entry (a killed run) or a stale entry pickled
            # against a since-renamed class/module is a miss, not an
            # error; the cell just re-runs and overwrites it.
            # ``ModuleNotFoundError`` is an ``ImportError`` subclass.
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def put(self, config, summary):
        """Store ``summary`` atomically under ``config``'s hash."""
        path = self._path(config)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            pickle.dump(summary, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def __len__(self):
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".pkl"))


# Per-worker-process memo: archive npz path -> loaded TraceArchive.
# Loading six months of prices once per process instead of once per
# cell is what makes small per-cell runtimes worth parallelizing.
_WORKER_ARCHIVES = {}


def _run_cell_worker(config, archive_path):
    """Worker entry point: rebuild the scenario and run one cell."""
    archive = None
    if archive_path is not None:
        archive = _WORKER_ARCHIVES.get(archive_path)
        if archive is None:
            archive = TraceArchive.load_npz(archive_path)
            _WORKER_ARCHIVES[archive_path] = archive
    return PolicySimulation(config, archive=archive).run()


class CellExecutionError(RuntimeError):
    """One grid cell failed; names the config so the culprit is obvious."""

    def __init__(self, config, cause):
        self.config = config
        self.cause = cause
        super().__init__(
            f"cell policy={config.policy!r} mechanism={config.mechanism!r} "
            f"seed={config.seed} (hash {config_hash(config)[:12]}) failed: "
            f"{type(cause).__name__}: {cause}")


def run_cells_parallel(configs, workers, archive_path=None):
    """Run ``configs`` across ``workers`` processes.

    Returns summaries in the order of ``configs``.  ``archive_path``
    is an ``.npz`` written by :meth:`TraceArchive.save_npz`; when
    ``None`` each worker regenerates traces from its config (correct,
    but slower).

    Fails fast: the first cell to raise cancels every not-yet-started
    future and surfaces as :class:`CellExecutionError` naming the
    failing config — instead of silently finishing (and discarding)
    the rest of the grid first.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    configs = list(configs)
    if not configs:
        return []
    workers = min(workers, len(configs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_cell_worker, config, archive_path)
                   for config in configs]
        wait(futures, return_when=FIRST_EXCEPTION)
        for future, config in zip(futures, configs):
            if future.done() and future.exception() is not None:
                for other in futures:
                    other.cancel()
                raise CellExecutionError(config, future.exception())
        return [future.result() for future in futures]


__all__ = [
    "CACHE_VERSION",
    "CellDiskCache",
    "CellExecutionError",
    "MarketParams",
    "ScenarioConfig",
    "archive_hash",
    "config_canonical",
    "config_hash",
    "run_cells_parallel",
]
