"""Arrival patterns: closed-form integrals against numeric truth."""

import math

import pytest

from repro.traffic import (
    CompositeRate,
    ConstantRate,
    DiurnalRate,
    FlashCrowd,
    ScaledRate,
)


def numeric_integral(pattern, t0, t1, steps=200_000):
    """Trapezoidal reference integral of ``rate_at`` over [t0, t1]."""
    dt = (t1 - t0) / steps
    total = 0.0
    for i in range(steps):
        a = pattern.rate_at(t0 + i * dt)
        b = pattern.rate_at(t0 + (i + 1) * dt)
        total += 0.5 * (a + b) * dt
    return total


class TestConstant:
    def test_counts(self):
        assert ConstantRate(2.5).requests_between(10.0, 110.0) == \
            pytest.approx(250.0)

    def test_rate(self):
        assert ConstantRate(2.5).rate_at(123.0) == 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantRate(-1.0)
        with pytest.raises(ValueError):
            ConstantRate(1.0).requests_between(10.0, 5.0)

    def test_no_breakpoints(self):
        assert ConstantRate(1.0).breakpoints() == ()


class TestDiurnal:
    def test_full_period_integral_is_base(self):
        # The sinusoid averages out over a whole period.
        pattern = DiurnalRate(base_rps=10.0, amplitude=0.8)
        assert pattern.requests_between(0.0, 86400.0) == \
            pytest.approx(10.0 * 86400.0)

    def test_closed_form_matches_numeric(self):
        pattern = DiurnalRate(base_rps=7.0, amplitude=0.6,
                              period_s=3600.0, phase_s=500.0)
        want = numeric_integral(pattern, 100.0, 2600.0, steps=20_000)
        assert pattern.requests_between(100.0, 2600.0) == \
            pytest.approx(want, rel=1e-6)

    def test_rate_swings_around_base(self):
        pattern = DiurnalRate(base_rps=10.0, amplitude=0.5,
                              period_s=86400.0)
        rates = [pattern.rate_at(t) for t in range(0, 86400, 600)]
        assert min(rates) == pytest.approx(5.0, rel=1e-3)
        assert max(rates) == pytest.approx(15.0, rel=1e-3)

    def test_amplitude_validated(self):
        with pytest.raises(ValueError):
            DiurnalRate(amplitude=1.2)
        with pytest.raises(ValueError):
            DiurnalRate(period_s=0.0)


class TestFlashCrowd:
    def test_total_is_trapezoid_area(self):
        crowd = FlashCrowd(start_s=1000.0, peak_rps=50.0, ramp_s=200.0,
                           hold_s=600.0, decay_s=400.0)
        want = 50.0 * (100.0 + 600.0 + 200.0)
        assert crowd.requests_between(0.0, 1e6) == pytest.approx(want)

    def test_zero_outside_burst(self):
        crowd = FlashCrowd(start_s=1000.0, peak_rps=50.0)
        assert crowd.rate_at(999.0) == 0.0
        assert crowd.requests_between(0.0, 1000.0) == 0.0
        assert crowd.requests_between(crowd.end_s, crowd.end_s + 100.0) == 0.0

    def test_piecewise_cumulative_matches_numeric(self):
        crowd = FlashCrowd(start_s=100.0, peak_rps=30.0, ramp_s=150.0,
                           hold_s=300.0, decay_s=250.0)
        for t0, t1 in [(0.0, 180.0), (150.0, 420.0), (400.0, 900.0),
                       (50.0, 850.0)]:
            want = numeric_integral(crowd, t0, t1, steps=50_000)
            assert crowd.requests_between(t0, t1) == \
                pytest.approx(want, rel=1e-4, abs=1e-6)

    def test_breakpoints_are_the_corners(self):
        crowd = FlashCrowd(start_s=100.0, peak_rps=30.0, ramp_s=150.0,
                           hold_s=300.0, decay_s=250.0)
        assert crowd.breakpoints() == (100.0, 250.0, 550.0, 800.0)

    def test_instant_decay(self):
        crowd = FlashCrowd(start_s=0.0, peak_rps=10.0, ramp_s=100.0,
                           hold_s=100.0, decay_s=0.0)
        assert crowd.requests_between(0.0, 300.0) == \
            pytest.approx(10.0 * 150.0)


class TestComposition:
    def test_add_sums_counts(self):
        combined = ConstantRate(2.0) + DiurnalRate(base_rps=3.0)
        assert isinstance(combined, CompositeRate)
        assert combined.requests_between(0.0, 86400.0) == \
            pytest.approx(5.0 * 86400.0)

    def test_add_flattens(self):
        parts = (ConstantRate(1.0) + ConstantRate(2.0)) + ConstantRate(3.0)
        assert len(parts.parts) == 3

    def test_breakpoints_merged_sorted(self):
        a = FlashCrowd(start_s=500.0, ramp_s=100.0, hold_s=100.0,
                       decay_s=100.0)
        b = FlashCrowd(start_s=100.0, ramp_s=50.0, hold_s=50.0,
                       decay_s=50.0)
        merged = (a + b).breakpoints()
        assert merged == tuple(sorted(set(a.breakpoints()
                                          + b.breakpoints())))

    def test_scaled(self):
        pattern = DiurnalRate(base_rps=0.05).scaled(1_000_000)
        assert isinstance(pattern, ScaledRate)
        assert pattern.requests_between(0.0, 86400.0) == \
            pytest.approx(0.05 * 1e6 * 86400.0)
        assert pattern.rate_at(0.0) == pytest.approx(
            1e6 * DiurnalRate(base_rps=0.05).rate_at(0.0))

    def test_subdivision_invariance(self):
        # Summing over any partition equals the whole-window count.
        pattern = DiurnalRate(base_rps=5.0, amplitude=0.7) + FlashCrowd(
            start_s=4000.0, peak_rps=80.0, ramp_s=600.0, hold_s=1200.0,
            decay_s=900.0)
        whole = pattern.requests_between(0.0, 20000.0)
        cuts = [0.0, 123.4, 4000.0, 4100.5, 7777.0, 12345.6, 20000.0]
        parts = sum(pattern.requests_between(a, b)
                    for a, b in zip(cuts, cuts[1:]))
        assert parts == pytest.approx(whole, rel=1e-12)

    def test_frozen_and_hashable(self):
        # Patterns ride inside ScenarioConfig and its cache hash.
        pattern = ConstantRate(2.0) + DiurnalRate(base_rps=3.0)
        assert hash(pattern) == hash(ConstantRate(2.0)
                                     + DiurnalRate(base_rps=3.0))
        with pytest.raises(AttributeError):
            pattern.parts = ()
